"""Fault injection: declarative, seeded fault plans for chaos testing.

The paper's model (and the seed simulator) is benign: links lose messages
i.i.d., a loss oracle flags every drop, clocks and delays stay inside their
advertised specs.  Real deployments - the regime studied by the
fault-tolerant clock synchronization literature - see processor crashes,
network partitions, *correlated* loss bursts, duplicated packets, and
hardware that wanders outside its datasheet.  This module injects all of
those into an execution from a declarative :class:`FaultPlan`:

* :class:`CrashWindow` - a processor is down over a real-time window.
  Crashes are fail-stop with durable state (a reboot): no events occur at
  the processor while it is down (sends are suppressed, arriving messages
  are lost, internal events skipped), and it resumes with its estimator
  state intact when the window ends.  Out-of-band delivery/loss signals
  are still applied (they mutate durable bookkeeping, not the event log).
* :class:`PartitionWindow` - a link drops every message, both directions,
  over a window.
* :class:`BurstLoss` - correlated loss via the Gilbert-Elliott two-state
  channel: each directed link is in a *good* or *bad* state, transitions
  happen per message, and the per-message loss probability depends on the
  state.  This complements the engine's i.i.d. ``loss_prob``.
* :class:`Duplication` - a delivered message is also echoed a second time.
  The paper's model requires at-most-once delivery, so the engine's link
  layer discards the echo at the receiver (and counts it); the echo never
  becomes a receive event, so FIFO ordering of genuine messages holds.
* :class:`DelayExcursion` - actual delays *exceed* the advertised
  :class:`~repro.core.specs.TransitSpec` upper bound during a window.
  This deliberately violates the preconditions of Theorem 2.1: downstream
  estimators may derive a negative cycle and must degrade gracefully
  (see :class:`~repro.core.csa.EfficientCSA` ``degraded_mode``).
* :class:`DriftExcursion` - a clock's rate leaves its advertised
  :class:`~repro.core.specs.DriftSpec` band during a window (realised by
  :class:`~repro.sim.clock.ExcursionClock`).  Also out-of-spec.
* :class:`ByzantineProcessor` - the processor *lies*.  Unlike every fault
  above, nothing about the execution's timing changes: the processor's
  clock, sends and receives are all genuine, but the **history payloads**
  it ships are tampered with on the way out - claimed timestamps skewed
  (``lie_timestamps``), skewed differently per neighbor (``equivocate``),
  records silently dropped (``truncate``), or events invented out of thin
  air (``fabricate``).  Because only payload *contents* change, a
  Byzantine run's event trace is bit-identical to the corresponding
  fault-free run; only estimator states diverge - which is exactly what
  makes the injection a sharp test of the hardened estimator
  (:mod:`repro.core.validate`, ``EfficientCSA(suspicion=...)``).
  A Byzantine processor lies about its *own* history; it cannot forge
  other processors' records wholesale (no signatures exist in this model,
  but the validator treats third-party records it relays as evidence
  *against the relay* only in shapes an honest relay could never produce).

**RNG isolation.**  A :class:`FaultPlan` carries its own seed; all fault
decisions (burst-loss transitions, duplication draws, echo delays) come
from that private stream.  The engine's baseline draws (i.i.d. loss,
in-spec delay sampling) keep their order, so attaching a plan with no
injections leaves an execution *bit-identical* to a run without one - the
chaos suite asserts this.

**Retransmission.**  :class:`RetransmitPolicy` turns the Sec 3.3 loss
*assumption* into an actual protocol: every application send arms a
timeout; if no delivery confirmation arrives in time the sender signals
``on_loss_detected`` (sound even when the message is merely late - flags
on delivered messages are ignored downstream) and resends the application
message with a fresh payload, with exponential backoff up to a retry cap.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..core.events import Event, EventId, EventKind, ProcessorId, link_id
from ..core.history import HistoryPayload

__all__ = [
    "CrashWindow",
    "PartitionWindow",
    "BurstLoss",
    "Duplication",
    "DelayExcursion",
    "DriftExcursion",
    "ByzantineProcessor",
    "BYZANTINE_MODES",
    "StateCorruption",
    "LateJoin",
    "CORRUPTION_SCOPES",
    "scramble_estimator",
    "FaultPlan",
    "ActiveFaults",
    "RetransmitPolicy",
]


def _check_window(start: float, end: float) -> None:
    if not (0 <= start < end):
        raise SimulationError(f"fault window requires 0 <= start < end, got [{start}, {end})")


@dataclass(frozen=True)
class CrashWindow:
    """Processor ``proc`` is down (fail-stop, durable state) over ``[start, end)``."""

    proc: ProcessorId
    start: float
    end: float

    def __post_init__(self):
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class PartitionWindow:
    """Link ``a -- b`` drops every message, both directions, over ``[start, end)``."""

    a: ProcessorId
    b: ProcessorId
    start: float
    end: float

    def __post_init__(self):
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class BurstLoss:
    """Gilbert-Elliott correlated loss on link ``a -- b`` over ``[start, end)``.

    Each directed half of the link keeps a channel state in {good, bad}.
    Per message the state first transitions (``p_enter``: good -> bad,
    ``p_exit``: bad -> good), then the message is dropped with the state's
    loss probability.  ``1 / p_exit`` is the mean burst length in messages.
    """

    a: ProcessorId
    b: ProcessorId
    p_enter: float = 0.05
    p_exit: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 0.9
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self):
        if not (0 <= self.start < self.end):
            raise SimulationError(f"bad burst-loss window [{self.start}, {self.end})")
        for name in ("p_enter", "p_exit", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not (0 <= value <= 1):
                raise SimulationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class Duplication:
    """Each delivered message on ``a -- b`` is echoed with probability ``prob``."""

    a: ProcessorId
    b: ProcessorId
    prob: float = 0.2
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self):
        if not (0 <= self.start < self.end):
            raise SimulationError(f"bad duplication window [{self.start}, {self.end})")
        if not (0 <= self.prob <= 1):
            raise SimulationError(f"duplication prob must be in [0, 1], got {self.prob}")


@dataclass(frozen=True)
class DelayExcursion:
    """Out-of-spec delays on link ``a -- b``: actual delay = spec upper + ``extra``.

    Requires the affected direction's transit spec to be bounded (an
    unbounded spec cannot be exceeded).  Violates Theorem 2.1's
    preconditions by construction.
    """

    a: ProcessorId
    b: ProcessorId
    start: float
    end: float
    extra: float = 1.0

    def __post_init__(self):
        _check_window(self.start, self.end)
        if self.extra <= 0:
            raise SimulationError(f"excursion extra must be positive, got {self.extra}")


@dataclass(frozen=True)
class DriftExcursion:
    """Clock of ``proc`` runs at (true rate + ``rate_offset``) over ``[start, end)``.

    The advertised spec is *not* widened - that is the point: the clock
    silently violates its datasheet, exactly the failure the consistency
    check of Theorem 2.1 can expose.
    """

    proc: ProcessorId
    start: float
    end: float
    rate_offset: float = 0.5

    def __post_init__(self):
        _check_window(self.start, self.end)
        if self.rate_offset == 0:
            raise SimulationError("rate_offset must be non-zero for an excursion")


#: the tampering modes a Byzantine processor may combine
BYZANTINE_MODES = frozenset(
    {"lie_timestamps", "equivocate", "truncate", "fabricate"}
)


@dataclass(frozen=True)
class ByzantineProcessor:
    """Processor ``proc`` tampers with outgoing history payloads.

    ``modes`` is a non-empty subset of :data:`BYZANTINE_MODES`:

    * ``lie_timestamps`` - claimed local times of own records are skewed by
      a growing *rate* error: ``claimed = lt + magnitude * (lt - anchor)``
      where ``anchor`` is the local time of the first tampered record.  A
      rate skew is chosen deliberately: a *constant* offset lie provably
      cancels around every cycle of the sync graph (each cycle enters and
      leaves the liar equally often), so it is both undetectable and
      harmless for external synchronization.  Only inconsistent lies can
      poison bounds - and those are exactly what negative-cycle detection
      catches.
    * ``equivocate`` - as ``lie_timestamps``, but with a different skew
      factor per destination, so neighbors receive mutually inconsistent
      copies of the same events (detected when relayed copies meet).
    * ``truncate`` - each shipped record is silently dropped with
      probability ``rate`` (receivers see sequence gaps no honest sender
      could produce).
    * ``fabricate`` - with probability ``rate`` per payload, invented
      internal events are appended after the liar's last genuine record,
      squatting on sequence numbers its real future events will also use.

    The same lie for the same event id (and destination, under
    equivocation) is repeated on re-reports, so the liar stays
    *self-consistent* - the hardest case for a validator.  The source is
    never allowed to be Byzantine: its clock defines real time.
    """

    proc: ProcessorId
    modes: Tuple[str, ...] = ("lie_timestamps",)
    start: float = 0.0
    end: float = math.inf
    #: rate-skew magnitude of timestamp lies (claimed extra seconds per
    #: genuine local second since the anchor)
    magnitude: float = 0.5
    #: per-record truncation probability / per-payload fabrication probability
    rate: float = 0.25

    def __post_init__(self):
        object.__setattr__(self, "modes", tuple(self.modes))
        if not (0 <= self.start < self.end):
            raise SimulationError(f"bad byzantine window [{self.start}, {self.end})")
        if not self.modes:
            raise SimulationError("ByzantineProcessor needs at least one mode")
        unknown = set(self.modes) - BYZANTINE_MODES
        if unknown:
            raise SimulationError(
                f"unknown byzantine mode(s) {sorted(unknown)}; "
                f"choose from {sorted(BYZANTINE_MODES)}"
            )
        if self.magnitude <= 0:
            raise SimulationError(
                f"byzantine magnitude must be positive, got {self.magnitude}"
            )
        if not (0 <= self.rate <= 1):
            raise SimulationError(f"byzantine rate must be in [0, 1], got {self.rate}")


#: state-corruption scopes the churn fault model can scramble (which
#: subsystem of a self-healing estimator gets poisoned)
CORRUPTION_SCOPES = ("agdp", "history", "ledger")


@dataclass(frozen=True)
class StateCorruption:
    """Estimator state of ``proc`` is scrambled in place at real time ``at``.

    The self-stabilization fault model (Charron-Bost & Penet de Monterno
    style): nothing about the execution changes - no message is lost, no
    clock drifts - but the victim's *internal state* is arbitrarily
    corrupted.  ``scope`` picks the poisoned subsystem (see
    :data:`CORRUPTION_SCOPES`): AGDP distance matrix, history
    frontier/buffers, or the suspicion ledger.  A self-healing estimator
    (``EfficientCSA(self_heal=True)``) must detect the corruption at its
    next event hook and rebuild from its durable logs; re-convergence time
    is the number of events (or real time) until Theorem 2.1 bounds hold
    again.  Corrupting a non-self-healing estimator is refused (counted
    as skipped), since it could never recover.
    """

    proc: ProcessorId
    at: float
    scope: str = "agdp"

    def __post_init__(self):
        if self.at < 0:
            raise SimulationError(f"corruption time must be >= 0, got {self.at}")
        if self.scope not in CORRUPTION_SCOPES:
            raise SimulationError(
                f"unknown corruption scope {self.scope!r}; "
                f"choose from {CORRUPTION_SCOPES}"
            )


@dataclass(frozen=True)
class LateJoin:
    """``proc`` is absent until ``at``, then admitted via ``sponsor``.

    Before ``at`` the processor behaves exactly like a crashed one (no
    events, arrivals dropped).  At ``at`` the sponsor - which must be a
    link neighbor - sends a handshake message carrying its bootstrap
    snapshot (:meth:`~repro.core.csa.EfficientCSA.bootstrap_snapshot`);
    the joiner adopts it and converges without replaying the run.  The
    source cannot join late: its clock defines real time.
    """

    proc: ProcessorId
    at: float
    sponsor: ProcessorId

    def __post_init__(self):
        if self.at < 0:
            raise SimulationError(f"join time must be >= 0, got {self.at}")
        if self.proc == self.sponsor:
            raise SimulationError(f"{self.proc!r} cannot sponsor its own join")


def scramble_estimator(estimator, scope: str, rng: random.Random) -> bool:
    """Corrupt one subsystem of ``estimator`` in a detectably broken way.

    Returns ``True`` when state was actually scrambled; ``False`` when the
    corruption is refused (estimator is not self-healing, or the targeted
    subsystem holds nothing to corrupt yet).  Every scramble is guaranteed
    to trip the estimator's structural audit
    (:meth:`~repro.core.csa.EfficientCSA.self_check`): the AGDP scope
    poisons matrix diagonals, the history scope drags the knowledge
    frontier below the live tracker's, and the ledger scope plants a
    negative suspicion score.
    """
    if not getattr(estimator, "self_heal", False):
        return False
    if scope not in CORRUPTION_SCOPES:
        raise SimulationError(
            f"unknown corruption scope {scope!r}; choose from {CORRUPTION_SCOPES}"
        )
    if scope == "agdp":
        return _scramble_agdp(estimator.agdp, rng)
    if scope == "history":
        return _scramble_history(estimator, rng)
    return _scramble_ledger(estimator, rng)


def _scramble_agdp(agdp, rng: random.Random) -> bool:
    nodes = sorted(agdp.nodes)
    if not nodes:
        return False
    dist = getattr(agdp, "_dist", None)
    if dist is not None:  # dict backend
        for x in nodes:
            row = dist[x]
            for y in list(row):
                if y != x and math.isfinite(row[y]):
                    row[y] += rng.uniform(-2.0, 2.0)
            row[x] = rng.uniform(0.5, 3.0)  # nonzero diagonal: the detector
        return True
    matrix = getattr(agdp, "_matrix", None)
    if matrix is None:
        return False  # source-only backend keeps no matrix to scramble
    n = agdp._n
    for i in range(n):
        for j in range(n):
            if i == j:
                matrix[i, j] = rng.uniform(0.5, 3.0)
            elif math.isfinite(matrix[i, j]):
                matrix[i, j] = matrix[i, j] + rng.uniform(-2.0, 2.0)
    return n > 0


def _scramble_history(estimator, rng: random.Random) -> bool:
    history = estimator.history
    victims = [p for p in estimator.live.processors if history.known_seq(p) >= 0]
    if not victims:
        return False
    # drag the frontier strictly below the live tracker's (the detector)
    # and trash the buffer indexes; recovery re-derives both from the log
    for proc in victims:
        history._known[proc] = max(-1, history.known_seq(proc) - rng.randint(1, 3))
    history._buffer.clear()
    history._lacking.clear()
    for pending in history._pending.values():
        pending.clear()
    return True


def _scramble_ledger(estimator, rng: random.Random) -> bool:
    tracker = estimator.suspicion
    if tracker is None:
        return False
    others = sorted(p for p in estimator.spec.processors if p != estimator.proc)
    if not others:
        return False
    tracker.scores[rng.choice(others)] = -rng.uniform(1.0, 5.0)
    return True


#: injection kinds that violate the advertised specification
_OUT_OF_SPEC = (DelayExcursion, DriftExcursion)

#: injection kinds that are adversarial (lying), not merely out-of-spec
_ADVERSARIAL = (ByzantineProcessor,)


@dataclass(frozen=True)
class RetransmitPolicy:
    """Timeout + exponential backoff + max-retries recovery (Sec 3.3 made real).

    Parameters
    ----------
    timeout:
        Real time the sender waits for a delivery confirmation before
        declaring the message lost.  Choose comfortably above the link's
        transit upper bound to avoid false loss signals (false signals are
        *sound* - they only discard information - but wasteful).
    backoff:
        Multiplier applied to the timeout on each successive retry.
    max_retries:
        Retries per original application message; after these are
        exhausted the message is abandoned (history re-reports its records
        on the next regular send, so abandonment degrades, not corrupts).
    """

    timeout: float = 1.0
    backoff: float = 2.0
    max_retries: int = 3

    def __post_init__(self):
        if self.timeout <= 0:
            raise SimulationError(f"retransmit timeout must be positive, got {self.timeout}")
        if self.backoff < 1:
            raise SimulationError(f"retransmit backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise SimulationError(f"max_retries must be >= 0, got {self.max_retries}")

    def timeout_for(self, attempt: int) -> float:
        """The ack deadline for the ``attempt``-th transmission (0-based)."""
        return self.timeout * (self.backoff ** attempt)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seeded timeline of fault injections.

    The plan is immutable and bound to one simulation at a time via
    :meth:`bind`, which creates the runtime state (private RNG stream,
    Gilbert-Elliott channel states, counters).
    """

    seed: int = 0
    injections: Tuple[object, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "injections", tuple(self.injections))
        known = (
            CrashWindow,
            PartitionWindow,
            BurstLoss,
            Duplication,
            DelayExcursion,
            DriftExcursion,
            ByzantineProcessor,
            StateCorruption,
            LateJoin,
        )
        for injection in self.injections:
            if not isinstance(injection, known):
                raise SimulationError(
                    f"unknown fault injection type {type(injection).__name__}"
                )

    @property
    def is_noop(self) -> bool:
        return not self.injections

    def of_kind(self, kind) -> List[object]:
        return [i for i in self.injections if isinstance(i, kind)]

    def has_out_of_spec(self) -> bool:
        """Whether any injection violates the advertised specification."""
        return any(isinstance(i, _OUT_OF_SPEC) for i in self.injections)

    def out_of_spec_windows(self) -> List[Tuple[float, float]]:
        """Real-time windows during which some out-of-spec fault is active."""
        return [
            (i.start, i.end) for i in self.injections if isinstance(i, _OUT_OF_SPEC)
        ]

    def has_adversarial(self) -> bool:
        """Whether any injection makes a processor lie (Byzantine)."""
        return any(isinstance(i, _ADVERSARIAL) for i in self.injections)

    def byzantine_procs(self) -> Tuple[ProcessorId, ...]:
        """The processors with a Byzantine injection, sorted, deduplicated."""
        return tuple(
            sorted({i.proc for i in self.injections if isinstance(i, ByzantineProcessor)})
        )

    def corruptions(self) -> List["StateCorruption"]:
        """The state-corruption injections, in plan order."""
        return self.of_kind(StateCorruption)

    def late_joins(self) -> List["LateJoin"]:
        """The late-join injections, in plan order."""
        return self.of_kind(LateJoin)

    def bind(self, network) -> "ActiveFaults":
        """Validate the plan against ``network`` and create runtime state."""
        return ActiveFaults(self, network)

    # -- randomized schedules ------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        network,
        duration: float,
        *,
        crashes: int = 2,
        partitions: int = 2,
        burst_links: int = 2,
        duplication_links: int = 1,
        crash_source: bool = False,
        mean_outage: float = 0.1,
    ) -> "FaultPlan":
        """A seeded randomized fault schedule for chaos/soak runs.

        Draws ``crashes`` crash windows, ``partitions`` link partitions,
        Gilbert-Elliott burst loss on ``burst_links`` links and duplication
        on ``duplication_links`` links, with outage windows averaging
        ``mean_outage * duration``.  The source is never crashed unless
        ``crash_source`` is set (crashing the root merely widens bounds,
        which makes soak assertions vacuous).  No out-of-spec injections
        are generated: randomized soak runs must keep Theorem 2.1's
        preconditions so soundness stays assertable.
        """
        rng = random.Random(seed)
        procs = [p for p in network.processors if crash_source or p != network.source]
        links = sorted(network.links)
        injections: List[object] = []

        def window() -> Tuple[float, float]:
            length = min(duration, rng.expovariate(1.0 / (mean_outage * duration)))
            length = max(length, 0.01 * duration)
            start = rng.uniform(0.0, max(duration - length, 1e-6))
            return start, start + length

        for _ in range(min(crashes, len(procs))):
            start, end = window()
            injections.append(CrashWindow(rng.choice(procs), start, end))
        for _ in range(min(partitions, len(links))):
            start, end = window()
            a, b = rng.choice(links)
            injections.append(PartitionWindow(a, b, start, end))
        for a, b in rng.sample(links, min(burst_links, len(links))):
            injections.append(
                BurstLoss(
                    a,
                    b,
                    p_enter=rng.uniform(0.02, 0.1),
                    p_exit=rng.uniform(0.2, 0.5),
                    loss_bad=rng.uniform(0.7, 0.95),
                )
            )
        for a, b in rng.sample(links, min(duplication_links, len(links))):
            injections.append(Duplication(a, b, prob=rng.uniform(0.1, 0.3)))
        return cls(seed=rng.randrange(2**31), injections=tuple(injections))


class ActiveFaults:
    """Runtime fault state bound to one simulation run.

    All randomness comes from the plan's private stream; the engine's own
    RNG is never consulted here.
    """

    def __init__(self, plan: FaultPlan, network):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        procs = set(network.processors)
        links = set(network.links)
        #: per-processor crash windows
        self._crashes: Dict[ProcessorId, List[Tuple[float, float]]] = {}
        #: per-canonical-link partition windows
        self._partitions: Dict[Tuple[ProcessorId, ProcessorId], List[Tuple[float, float]]] = {}
        #: per-canonical-link burst-loss injections and per-directed-link state
        self._bursts: Dict[Tuple[ProcessorId, ProcessorId], BurstLoss] = {}
        self._burst_bad: Dict[Tuple[ProcessorId, ProcessorId], bool] = {}
        self._duplications: Dict[Tuple[ProcessorId, ProcessorId], Duplication] = {}
        self._delay_excursions: Dict[Tuple[ProcessorId, ProcessorId], List[DelayExcursion]] = {}
        self._drift_excursions: Dict[ProcessorId, List[DriftExcursion]] = {}
        #: per-processor Byzantine injection (at most one per processor)
        self._byzantine: Dict[ProcessorId, ByzantineProcessor] = {}
        #: state-corruption injections, in plan order
        self._corruptions: List[StateCorruption] = []
        #: per-processor late-join injection (at most one per processor)
        self._late_joins: Dict[ProcessorId, LateJoin] = {}
        #: cached claimed local time per (event id, destination-or-None)
        self._lie_lt: Dict[Tuple[EventId, Optional[ProcessorId]], float] = {}
        #: local time of the first tampered record per liar (lie anchor)
        self._lie_anchor: Dict[ProcessorId, float] = {}

        def check_proc(proc):
            if proc not in procs:
                raise SimulationError(f"fault plan references unknown processor {proc!r}")

        def check_link(a, b):
            lid = link_id(a, b)
            if lid not in links:
                raise SimulationError(f"fault plan references unknown link {lid}")
            return lid

        for injection in plan.injections:
            if isinstance(injection, CrashWindow):
                check_proc(injection.proc)
                self._crashes.setdefault(injection.proc, []).append(
                    (injection.start, injection.end)
                )
            elif isinstance(injection, PartitionWindow):
                lid = check_link(injection.a, injection.b)
                self._partitions.setdefault(lid, []).append(
                    (injection.start, injection.end)
                )
            elif isinstance(injection, BurstLoss):
                lid = check_link(injection.a, injection.b)
                if lid in self._bursts:
                    raise SimulationError(f"duplicate burst-loss injection on link {lid}")
                self._bursts[lid] = injection
                self._burst_bad[(injection.a, injection.b)] = False
                self._burst_bad[(injection.b, injection.a)] = False
            elif isinstance(injection, Duplication):
                lid = check_link(injection.a, injection.b)
                if lid in self._duplications:
                    raise SimulationError(f"duplicate duplication injection on link {lid}")
                self._duplications[lid] = injection
            elif isinstance(injection, DelayExcursion):
                lid = check_link(injection.a, injection.b)
                self._delay_excursions.setdefault(lid, []).append(injection)
            elif isinstance(injection, DriftExcursion):
                check_proc(injection.proc)
                if injection.proc == network.source:
                    raise SimulationError(
                        "cannot inject a drift excursion at the source: its clock "
                        "defines real time"
                    )
                self._drift_excursions.setdefault(injection.proc, []).append(injection)
            elif isinstance(injection, ByzantineProcessor):
                check_proc(injection.proc)
                if injection.proc == network.source:
                    raise SimulationError(
                        "cannot make the source Byzantine: its clock defines "
                        "real time and every estimator must trust it"
                    )
                if injection.proc in self._byzantine:
                    raise SimulationError(
                        f"duplicate Byzantine injection for processor {injection.proc!r}"
                    )
                self._byzantine[injection.proc] = injection
            elif isinstance(injection, StateCorruption):
                check_proc(injection.proc)
                self._corruptions.append(injection)
            elif isinstance(injection, LateJoin):
                check_proc(injection.proc)
                check_proc(injection.sponsor)
                check_link(injection.proc, injection.sponsor)
                if injection.proc == network.source:
                    raise SimulationError(
                        "the source cannot join late: its clock defines real time"
                    )
                if injection.proc in self._late_joins:
                    raise SimulationError(
                        f"duplicate late-join injection for processor {injection.proc!r}"
                    )
                self._late_joins[injection.proc] = injection
        #: counters of injected faults, by kind, for reporting
        self.injected: Dict[str, int] = {
            "crash_suppressed_sends": 0,
            "crash_suppressed_internal": 0,
            "crash_dropped_arrivals": 0,
            "partition_drops": 0,
            "burst_drops": 0,
            "duplicates": 0,
            "delay_excursions": 0,
            "tampered_payloads": 0,
            "lied_timestamps": 0,
            "equivocations": 0,
            "truncated_records": 0,
            "fabricated_records": 0,
            "corruptions": 0,
            "corruptions_skipped": 0,
            "joins_bootstrapped": 0,
            "joins_cold": 0,
        }

    # -- queries the engine makes --------------------------------------------------

    @staticmethod
    def _in_window(windows: Iterable[Tuple[float, float]], rt: float) -> bool:
        return any(start <= rt < end for start, end in windows)

    def crashed(self, proc: ProcessorId, rt: float) -> bool:
        join = self._late_joins.get(proc)
        if join is not None and rt < join.at:
            # a not-yet-joined processor behaves exactly like a crashed one:
            # no events occur at it and arrivals are dropped
            return True
        windows = self._crashes.get(proc)
        return bool(windows) and self._in_window(windows, rt)

    def corruptions(self) -> List[StateCorruption]:
        return list(self._corruptions)

    def late_joins(self) -> Dict[ProcessorId, LateJoin]:
        return dict(self._late_joins)

    def crash_windows(self, proc: ProcessorId) -> List[Tuple[float, float]]:
        return list(self._crashes.get(proc, ()))

    def drop_in_transit(
        self, src: ProcessorId, dest: ProcessorId, rt: float
    ) -> Optional[str]:
        """Partition / burst-loss verdict for a message entering the link now.

        Returns a reason string when the message is dropped, else ``None``.
        Gilbert-Elliott state transitions happen here, once per message on
        a burst-configured link, drawing only from the fault stream.
        """
        lid = link_id(src, dest)
        windows = self._partitions.get(lid)
        if windows and self._in_window(windows, rt):
            self.injected["partition_drops"] += 1
            return "partition"
        burst = self._bursts.get(lid)
        if burst is not None and burst.start <= rt < burst.end:
            key = (src, dest)
            bad = self._burst_bad[key]
            if bad:
                if self.rng.random() < burst.p_exit:
                    bad = False
            else:
                if self.rng.random() < burst.p_enter:
                    bad = True
            self._burst_bad[key] = bad
            loss = burst.loss_bad if bad else burst.loss_good
            if loss > 0 and self.rng.random() < loss:
                self.injected["burst_drops"] += 1
                return "burst"
        return None

    def duplicated(self, src: ProcessorId, dest: ProcessorId, rt: float) -> bool:
        dup = self._duplications.get(link_id(src, dest))
        if dup is None or not (dup.start <= rt < dup.end):
            return False
        if self.rng.random() < dup.prob:
            self.injected["duplicates"] += 1
            return True
        return False

    def echo_delay(self, base_delay: float) -> float:
        """Extra delay of a duplicate echo behind the original delivery."""
        return base_delay * self.rng.uniform(0.1, 1.0)

    def link_has_delay_excursion(self, src: ProcessorId, dest: ProcessorId) -> bool:
        """Whether any delay excursion is planned on this link (any window).

        Used by the engine to accept *collateral* out-of-spec arrivals: a
        message queued FIFO behind an excursed arrival may itself land past
        its transit bound after the window closes.
        """
        return bool(self._delay_excursions.get(link_id(src, dest)))

    def delay_excursion(
        self, src: ProcessorId, dest: ProcessorId, rt: float
    ) -> Optional[float]:
        """The active out-of-spec ``extra`` delay for this send, if any."""
        for excursion in self._delay_excursions.get(link_id(src, dest), ()):
            if excursion.start <= rt < excursion.end:
                self.injected["delay_excursions"] += 1
                return excursion.extra
        return None

    def clock_for(self, proc: ProcessorId, base):
        """Wrap ``base`` in an out-of-spec excursion clock when planned."""
        excursions = self._drift_excursions.get(proc)
        if not excursions:
            return base
        from .clock import ExcursionClock

        return ExcursionClock(
            base,
            [(e.start, e.end, e.rate_offset) for e in excursions],
        )

    # -- Byzantine payload tampering -----------------------------------------------

    def tamper_payloads(
        self,
        src: ProcessorId,
        dest: ProcessorId,
        rt: float,
        payloads: Dict[str, object],
    ) -> Dict[str, object]:
        """Apply ``src``'s Byzantine modes to its outgoing payloads, if any.

        When ``src`` has no active Byzantine injection the input mapping is
        returned unchanged and **no randomness is consumed**, so plans
        without adversarial injections keep executions bit-identical.  Only
        :class:`~repro.core.history.HistoryPayload` values are tampered;
        other payload types (e.g. the full-information estimator's
        ``View``) pass through untouched - the full-information reference
        has no hardening and exists to define ground truth, not to survive
        liars.
        """
        byz = self._byzantine.get(src)
        if byz is None or not (byz.start <= rt < byz.end):
            return payloads
        out = {}
        changed = False
        for name, payload in payloads.items():
            tampered = self._tamper_one(byz, dest, payload)
            changed = changed or tampered is not payload
            out[name] = tampered
        if changed:
            self.injected["tampered_payloads"] += 1
        return out

    def _tamper_one(self, byz: ByzantineProcessor, dest: ProcessorId, payload):
        if not isinstance(payload, HistoryPayload):
            return payload
        records: List[Event] = []
        mutated = False
        for record in payload.records:
            if "truncate" in byz.modes and self.rng.random() < byz.rate:
                self.injected["truncated_records"] += 1
                mutated = True
                continue
            if record.eid.proc == byz.proc:
                claimed = self._claimed_lt(byz, dest, record)
                if claimed != record.lt:
                    record = dataclasses.replace(record, lt=claimed)
                    mutated = True
            records.append(record)
        if "fabricate" in byz.modes and self.rng.random() < byz.rate:
            own = [r for r in records if r.eid.proc == byz.proc]
            if own:
                last = max(own, key=lambda r: r.eid.seq)
                lt = max(r.lt for r in own)
                for i in range(1 + (self.rng.random() < 0.5)):
                    lt += self.rng.uniform(0.05, 0.5)
                    records.append(
                        Event(EventId(byz.proc, last.eid.seq + 1 + i), lt, EventKind.INTERNAL)
                    )
                    self.injected["fabricated_records"] += 1
                    mutated = True
        if not mutated:
            return payload
        return HistoryPayload(records=tuple(records), loss_flags=payload.loss_flags)

    def _claimed_lt(self, byz: ByzantineProcessor, dest: ProcessorId, record: Event) -> float:
        """The (cached) lie told about ``record``'s local time to ``dest``.

        Caching per event id - and per destination under equivocation -
        keeps the liar self-consistent across re-reports and
        retransmissions, which is the hardest case for the validator.
        """
        lying = "lie_timestamps" in byz.modes or "equivocate" in byz.modes
        if not lying:
            return record.lt
        key = (record.eid, dest if "equivocate" in byz.modes else None)
        cached = self._lie_lt.get(key)
        if cached is not None:
            return cached
        anchor = self._lie_anchor.setdefault(byz.proc, record.lt)
        factor = 1.0
        if "equivocate" in byz.modes:
            # deterministic per (liar, dest) so the factor does not depend
            # on message interleaving; Random() rejects tuple seeds, so key
            # the stream by string
            factor = random.Random(
                f"{self.plan.seed}:{byz.proc}:{dest}"
            ).uniform(0.5, 1.5)
        claimed = record.lt + byz.magnitude * factor * max(record.lt - anchor, 0.0)
        self._lie_lt[key] = claimed
        if claimed != record.lt:
            self.injected["lied_timestamps"] += 1
            if "equivocate" in byz.modes:
                self.injected["equivocations"] += 1
        return claimed

    def note_crash_suppressed_send(self) -> None:
        self.injected["crash_suppressed_sends"] += 1

    def note_crash_suppressed_internal(self) -> None:
        self.injected["crash_suppressed_internal"] += 1

    def note_crash_dropped_arrival(self) -> None:
        self.injected["crash_dropped_arrivals"] += 1
