"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that the package
can be installed editable in offline environments lacking the ``wheel``
package (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
