"""Compare a fresh pytest-benchmark JSON run against a committed baseline.

The perf-regression gate behind ``make bench-compare``: re-runs of the
core benchmark suite are diffed name-by-name against ``BENCH_core.json``
and the process exits non-zero when any benchmark slowed down beyond the
tolerance, so CI turns performance regressions into red builds instead of
silent drift.

Stdlib only (CI installs nothing for it).  Usage::

    python benchmarks/compare.py BENCH_core.json BENCH_fresh.json \
        [--tolerance 0.25] [--report compare_report.md] \
        [--assert-speedup FAST SLOW MIN_RATIO]...

* tolerance is relative: ``--tolerance 0.25`` fails a benchmark whose
  mean grew more than 25% over baseline.  The ``BENCH_TOLERANCE``
  environment variable supplies the default (CI sets it loose - shared
  runners are noisy; locally the flag can be much tighter).
* a baseline benchmark missing from the fresh run fails the gate
  (a deleted benchmark must come with a refreshed baseline); benchmarks
  only in the fresh run are reported but pass.
* ``--assert-speedup FAST SLOW MIN_RATIO`` (repeatable) additionally
  requires ``mean(SLOW) / mean(FAST) >= MIN_RATIO`` *within the fresh
  run* - machine-independent, used to pin the compacted numpy AGDP
  backend's required speedup over the dict backend and the binary wire
  codec's speedup over JSON.
* ``--assert-improved-vs FILE NAME MIN_RATIO`` (repeatable) requires
  ``mean(NAME in FILE) / mean(NAME fresh) >= MIN_RATIO`` - a floor
  against a *frozen* historical baseline, used to pin the batched
  engine + binary wire speedups against the pre-optimization numbers
  even after ``bench-refresh`` reblesses ``BENCH_core.json``.
* ``--report PATH`` writes the comparison table as markdown (uploaded as
  a CI artifact).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List


def load_means(path: str) -> Dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON file."""
    with open(path) as fh:
        data = json.load(fh)
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise SystemExit(f"{path}: not a pytest-benchmark JSON file (no 'benchmarks')")
    means = {}
    for bench in benchmarks:
        means[bench["name"]] = float(bench["stats"]["mean"])
    return means


def format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (BENCH_core.json)")
    parser.add_argument("fresh", help="freshly generated benchmark JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "0.25")),
        help="relative slowdown allowed before failing (default: "
        "$BENCH_TOLERANCE or 0.25)",
    )
    parser.add_argument(
        "--report", metavar="PATH", help="write the comparison table as markdown"
    )
    parser.add_argument(
        "--assert-speedup",
        nargs=3,
        action="append",
        default=[],
        metavar=("FAST", "SLOW", "MIN_RATIO"),
        help="require mean(SLOW)/mean(FAST) >= MIN_RATIO in the fresh run",
    )
    parser.add_argument(
        "--assert-improved-vs",
        nargs=3,
        action="append",
        default=[],
        metavar=("FILE", "NAME", "MIN_RATIO"),
        help="require mean(NAME in FILE)/mean(NAME in fresh) >= MIN_RATIO",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")

    baseline = load_means(args.baseline)
    fresh = load_means(args.fresh)

    rows = []  # (name, base, new, ratio, status)
    failures = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh:
            rows.append((name, base, None, None, "MISSING"))
            failures.append(f"{name}: present in baseline but not in the fresh run")
            continue
        new = fresh[name]
        ratio = new / base if base > 0 else float("inf")
        if ratio > 1.0 + args.tolerance:
            status = "REGRESSED"
            failures.append(
                f"{name}: {format_seconds(base)} -> {format_seconds(new)} "
                f"({ratio:.2f}x, tolerance {1.0 + args.tolerance:.2f}x)"
            )
        else:
            status = "ok"
        rows.append((name, base, new, ratio, status))
    for name in sorted(set(fresh) - set(baseline)):
        rows.append((name, None, fresh[name], None, "NEW"))

    speedups = []  # (fast, slow, required, actual, ok)
    for fast, slow, min_ratio in args.assert_speedup:
        required = float(min_ratio)
        missing = [n for n in (fast, slow) if n not in fresh]
        if missing:
            failures.append(
                f"speedup gate {slow} vs {fast}: missing from the fresh run: "
                + ", ".join(missing)
            )
            speedups.append((fast, slow, required, None, False))
            continue
        actual = fresh[slow] / fresh[fast]
        ok = actual >= required
        if not ok:
            failures.append(
                f"speedup gate: {slow} / {fast} = {actual:.2f}x, "
                f"required >= {required:.2f}x"
            )
        speedups.append((fast, slow, required, actual, ok))

    improvements = []  # (label, required, actual, ok)
    frozen_cache: Dict[str, Dict[str, float]] = {}
    for path, name, min_ratio in args.assert_improved_vs:
        required = float(min_ratio)
        label = f"{name} vs {os.path.basename(path)}"
        if path not in frozen_cache:
            frozen_cache[path] = load_means(path)
        frozen = frozen_cache[path]
        if name not in frozen:
            failures.append(f"improvement gate {label}: {name} missing from {path}")
            improvements.append((label, required, None, False))
            continue
        if name not in fresh:
            failures.append(
                f"improvement gate {label}: {name} missing from the fresh run"
            )
            improvements.append((label, required, None, False))
            continue
        actual = frozen[name] / fresh[name]
        ok = actual >= required
        if not ok:
            failures.append(
                f"improvement gate: {name} = {format_seconds(fresh[name])} vs frozen "
                f"{format_seconds(frozen[name])} ({actual:.2f}x, required >= "
                f"{required:.2f}x)"
            )
        improvements.append((label, required, actual, ok))

    lines = [
        f"# Benchmark comparison",
        "",
        f"- baseline: `{args.baseline}`",
        f"- fresh: `{args.fresh}`",
        f"- tolerance: {args.tolerance:.2f} (fail above {1.0 + args.tolerance:.2f}x)",
        "",
        "| benchmark | baseline | fresh | ratio | status |",
        "|---|---|---|---|---|",
    ]
    for name, base, new, ratio, status in rows:
        lines.append(
            "| {} | {} | {} | {} | {} |".format(
                name,
                format_seconds(base) if base is not None else "-",
                format_seconds(new) if new is not None else "-",
                f"{ratio:.2f}x" if ratio is not None else "-",
                status,
            )
        )
    if speedups:
        lines += [
            "",
            "| speedup gate | required | actual | status |",
            "|---|---|---|---|",
        ]
        for fast, slow, required, actual, ok in speedups:
            lines.append(
                "| {} vs {} | >= {:.2f}x | {} | {} |".format(
                    slow,
                    fast,
                    required,
                    f"{actual:.2f}x" if actual is not None else "-",
                    "ok" if ok else "FAILED",
                )
            )
    if improvements:
        lines += [
            "",
            "| improvement gate | required | actual | status |",
            "|---|---|---|---|",
        ]
        for label, required, actual, ok in improvements:
            lines.append(
                "| {} | >= {:.2f}x | {} | {} |".format(
                    label,
                    required,
                    f"{actual:.2f}x" if actual is not None else "-",
                    "ok" if ok else "FAILED",
                )
            )
    report = "\n".join(lines) + "\n"
    print(report)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(report)

    if failures:
        print(f"FAILED: {len(failures)} perf gate violation(s)", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"perf gate passed: {len(rows)} benchmark(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
