"""E9 benchmark - lossy operation with and without loss detection.

The live-point growth table (Sec 3.3) is printed once; the benchmark
times full lossy runs in both modes - undetected losses also cost time,
because dead-but-undetected points inflate every AGDP update.
"""

import math

import pytest

from repro.core import EfficientCSA

from conftest import build_gossip_sim, print_experiment_once


@pytest.mark.parametrize("detection", [True, False], ids=["detect", "no-detect"])
def test_lossy_run(benchmark, detection, request):
    print_experiment_once(
        request, "e9-message-loss", loss_probs=(0.2,), duration=120.0
    )

    def run():
        sim = build_gossip_sim(
            topology="ring",
            n=5,
            loss_prob=0.25,
            loss_detection_delay=3.0 if detection else math.inf,
            estimators={
                "efficient": lambda p, s: EfficientCSA(p, s, reliable=False)
            },
        )
        sim.run_until(80.0)
        return sim

    sim = benchmark(run)
    assert sim.messages_lost > 0
    peak_live = max(
        sim.estimator(p, "efficient").live.max_live
        for p in sim.network.processors
    )
    if detection:
        assert peak_live < 40
