"""Stratum hierarchy benchmarks - delegation hot paths.

Two costs matter for the federation's scaling story:

* the **delegation answer path** (decode ``dreq`` + source the bound +
  encode ``deleg``), which an anchor pays per downstream border per
  ``sync_period`` - low-rate, but it rides the core nodes' receive
  path, so it must stay cheap;
* ``compose_delegated``, which every downstream node pays on *every*
  internal sample to derive its external bound - it runs orders of
  magnitude more often than the network path, so the perf gate pins it
  to stay well under the answer path's cost (the ``bench-compare``
  speedup floor).

``test_delegation_reply_throughput`` is the committed-baseline perf
gate for the subsystem; a regression means anchors serve fewer borders
per core.
"""

import pytest

from repro.core.intervals import ClockBound
from repro.core.specs import DriftSpec
from repro.rt.clock import MonotonicClockSource, TimeBase
from repro.rt.cluster import ClusterConfig, build_spec
from repro.rt.node import Node, NodeConfig
from repro.rt.strata import DelegatedBound, DelegationServer, compose_delegated
from repro.rt.transport import LoopbackTransport
from repro.rt.wire import decode_frame, dreq_frame, encode_frame


def _delegation_rig(bound_source):
    """A delegation server over a primed node, no event loop."""
    config = ClusterConfig(
        processors=("c0", "c1", "c2"),
        links=(("c0", "c1"), ("c1", "c2")),
    )
    node = Node(
        NodeConfig(proc="c1", spec=build_spec(config)),
        LoopbackTransport(),
        clock=MonotonicClockSource(),
        time_base=TimeBase(),
    )
    server = DelegationServer(node, stratum=1, bound_source=bound_source)
    node._running = True
    server._running = True
    return server


def test_delegation_reply_throughput(benchmark):
    """decode + bound lookup + encode for one answered ``dreq``."""
    server = _delegation_rig(lambda: (ClockBound(5.0, 5.002), False, 0.05))
    dreq = encode_frame(dreq_frame("t1n0!anchor", server.endpoint, 7))

    result = benchmark(server.handle_dreq_bytes, dreq)

    frame = decode_frame(result).frame
    assert frame.type == "deleg" and frame.nonce == 7
    assert server.stats.replies > 0 and server.stats.shed_total == 0


def test_delegation_shed_fast_path(benchmark):
    """An unsynced anchor must refuse cheaply (liveness without progress)."""
    server = _delegation_rig(lambda: None)
    dreq = encode_frame(dreq_frame("t1n0!anchor", server.endpoint, 3))

    result = benchmark(server.handle_dreq_bytes, dreq)

    frame = decode_frame(result).frame
    assert frame.type == "shed" and frame.reason == "unsynced"


def test_compose_delegated_throughput(benchmark):
    """The per-sample external-bound composition (pure interval math)."""
    delegated = DelegatedBound(
        bound=ClockBound(10.0, 10.003),
        anchor_lt=9.5,
        anchor_rt=9.5,
        hops=2,
        stratum=1,
        anchor="c1",
        degraded=False,
    )
    internal = ClockBound(10.2, 10.204)
    drift = DriftSpec(alpha=1.0 - 200e-6, beta=1.0 + 200e-6)

    # pure interval math at ~1us per call: measure 200 compositions per
    # timing so the per-op mean is above timer resolution and the
    # bench-compare speedup floor against the reply path is meaningful
    result = benchmark.pedantic(
        compose_delegated, args=(internal, delegated, drift),
        iterations=200, rounds=100, warmup_rounds=2,
    )

    assert result.is_bounded and result.lower <= result.upper
