"""E5 benchmark - live-point tracking under controlled K2 (Lemma 4.1).

Benchmarks asymmetric-ping runs whose burst parameter dials K2; the
live-points table is printed once by the experiment.
"""

import pytest

from repro.core import EfficientCSA
from repro.sim import Simulation, standard_network, topologies
from repro.sim.workloads import AsymmetricPing

from conftest import print_experiment_once


@pytest.mark.parametrize("burst", [1, 2, 4])
def test_asymmetric_ping_run(benchmark, burst, request):
    print_experiment_once(
        request,
        "e5-live-points",
        bursts=(1, 2),
        ring_sizes=(4, 6),
        duration=60.0,
    )

    def run():
        names, links = topologies.ring(4)
        network = standard_network(names, links, seed=burst, delay=(0.05, 1.2))
        sim = Simulation(network, seed=burst)
        sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s))
        AsymmetricPing(burst=burst, gap=0.3, cycle_pause=3.0, seed=burst).install(sim)
        sim.run_until(60.0)
        return sim

    sim = benchmark(run)
    n_links = len(sim.network.links)
    k2 = sim.trace.link_asymmetry()
    assert k2 <= burst
    for proc in sim.network.processors:
        live_peak = sim.estimator(proc, "efficient").live.max_live
        assert live_peak <= 4 * max(k2, 1) * n_links + len(sim.network.processors)
