"""Micro-benchmarks of the core data structures.

Not tied to one experiment: these size the primitive costs that the
experiment-level numbers are built from - view bookkeeping, sync-graph
construction, shortest paths on harvested views, payload filtering.
"""

import pytest

from repro.core import (
    EfficientCSA,
    Event,
    EventId,
    EventKind,
    View,
    bellman_ford_from,
    build_sync_graph,
    external_bounds,
    extremal_execution,
    source_point,
)
from repro.core.csa_base import SuspicionPolicy
from repro.core.history import HistoryModule
from repro.sim import run_workload, standard_network, topologies
from repro.sim.faults import (
    FaultPlan,
    LateJoin,
    RetransmitPolicy,
    StateCorruption,
)
from repro.sim.workloads import PeriodicGossip


@pytest.fixture(scope="module")
def harvested():
    names, links = topologies.ring(6)
    network = standard_network(names, links, seed=17, drift_ppm=200)
    result = run_workload(
        network,
        PeriodicGossip(period=4.0, seed=17),
        {"efficient": lambda p, s: EfficientCSA(p, s)},
        duration=120.0,
        seed=17,
    )
    view = result.trace.global_view()
    return result, view, network.spec


def test_view_rebuild(benchmark, harvested):
    result, view, _spec = harvested

    def rebuild():
        fresh = View()
        for record in result.trace:
            fresh.add(record.event)
        return fresh

    rebuilt = benchmark(rebuild)
    assert len(rebuilt) == len(view)


def test_view_from_point(benchmark, harvested):
    _result, view, _spec = harvested
    point = view.last_event("p3").eid
    sub = benchmark(view.view_from, point)
    assert point in sub


def test_sync_graph_build(benchmark, harvested):
    _result, view, spec = harvested
    graph = benchmark(build_sync_graph, view, spec)
    assert len(graph) == len(view)


def test_bellman_ford_on_view(benchmark, harvested):
    _result, view, spec = harvested
    graph = build_sync_graph(view, spec)
    start = view.last_event("p3").eid
    dist = benchmark(bellman_ford_from, graph, start)
    assert dist[start] == 0.0


def test_external_bounds_query(benchmark, harvested):
    _result, view, spec = harvested
    graph = build_sync_graph(view, spec)
    point = view.last_event("p4").eid
    bound = benchmark(external_bounds, view, spec, point, graph)
    assert bound.is_bounded


def test_extremal_execution_build(benchmark, harvested):
    _result, view, spec = harvested
    graph = build_sync_graph(view, spec)
    point = view.last_event("p2").eid
    sp = source_point(view, spec)
    rt = benchmark(extremal_execution, view, spec, point, sp, "upper", graph)
    assert len(rt) == len(view)


def test_history_gossip_rounds(benchmark):
    """Full-mesh history gossip: sends must cost O(|payload|), not O(|H_v|).

    Eight processors, each round every processor records an internal event
    then sends to every neighbor in turn (reliable mode).  This is the hot
    path the pending index optimises: with the old full-buffer scan the
    cost per send grew with the buffer, independent of what the neighbor
    actually lacked.
    """
    procs = [f"p{i}" for i in range(8)]

    def gossip(rounds=12):
        modules = {
            p: HistoryModule(p, [q for q in procs if q != p]) for p in procs
        }
        seq = {p: 0 for p in procs}
        lt = 0.0
        for _ in range(rounds):
            for p in procs:
                lt += 1.0
                modules[p].record_local(
                    Event(eid=EventId(p, seq[p]), lt=lt, kind=EventKind.INTERNAL)
                )
                seq[p] += 1
                for q in procs:
                    if q == p:
                        continue
                    payload, _token = modules[p].prepare_payload(q)
                    modules[q].ingest_payload(p, payload)
        return modules

    modules = benchmark(gossip)
    # full mesh: every event reached every processor within its round
    assert all(
        m.known_seq(q) == 11 for m in modules.values() for q in procs
    )


def test_gossip_under_churn(benchmark):
    """Gossip with mid-run churn: join handshake + corruption rebuild.

    A six-processor line where one processor joins late (sponsor-snapshot
    bootstrap) and another has its AGDP scrambled mid-run (self-heal
    replay from the durable event log).  Sizes the overhead the churn
    layer adds to an ordinary unreliable gossip run: the snapshot
    export/adopt, the watermark handoff, and one full log replay.
    """
    names, links = topologies.line(6)

    def churn_run():
        network = standard_network(names, links, seed=23, loss_prob=0.01)
        plan = FaultPlan(
            injections=(
                LateJoin(names[5], 20.0, sponsor=names[4]),
                StateCorruption(names[2], 35.0, "agdp"),
            ),
        )
        return run_workload(
            network,
            PeriodicGossip(period=2.0, seed=23),
            {
                "efficient": lambda p, s: EfficientCSA(
                    p,
                    s,
                    reliable=False,
                    self_heal=True,
                    suspicion=SuspicionPolicy(),
                )
            },
            duration=60.0,
            seed=23,
            sample_period=5.0,
            faults=plan,
            retransmit=RetransmitPolicy(timeout=1.0, backoff=2.0, max_retries=3),
        )

    result = benchmark(churn_run)
    assert result.sim.faults.injected["joins_bootstrapped"] == 1
    assert result.sim.faults.injected["corruptions"] == 1
    assert result.soundness_violations() == []
