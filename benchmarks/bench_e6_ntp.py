"""E6 benchmark - the optimal CSA under NTP-style polling (Sec 4).

Benchmarks complete hierarchy runs at two scales; the NTP complexity
table (K1, K2, live, |E|^2) is printed once by the experiment.
"""

import pytest

from repro.core import EfficientCSA
from repro.sim import Simulation
from repro.sim.workloads import make_ntp_system

from conftest import print_experiment_once


@pytest.mark.parametrize("shape", [(2, 3), (2, 4, 6)])
def test_ntp_hierarchy_run(benchmark, shape, request):
    print_experiment_once(
        request, "e6-ntp-pattern", shapes=((2, 3), (2, 4, 6)), duration=120.0
    )

    def run():
        network, workload = make_ntp_system(shape, poll_period=15.0, seed=1)
        sim = Simulation(network, seed=1)
        sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s))
        workload.install(sim)
        sim.run_until(120.0)
        return sim

    sim = benchmark(run)
    assert sim.trace.link_asymmetry() <= 2
    # every server ends up synchronized
    for proc in sim.network.processors:
        assert sim.estimator(proc, "efficient").estimate().is_bounded
