"""Serving-tier benchmark - the per-probe cost of the Cristian tier.

The serving tier's scaling claim is that clients are *cheap*: one
stateless decode + admit + answer round per probe, no per-client state,
no protocol membership.  These benchmarks pin the cost of that hot path
(the synchronous core of :class:`~repro.rt.serve.ServeNode`, exactly
the work the asyncio shell does per request, minus the queue hop) and
of the explicit-shed fast path, which must stay cheaper than serving -
shedding is the overload valve, so it has to cost less than the work it
is refusing.

``test_serve_probe_throughput`` is the committed-baseline perf gate for
this subsystem: a regression here means fewer queries per second per
core.
"""

import pytest

from repro.core.events import Event, EventId, EventKind
from repro.rt.clock import MonotonicClockSource, TimeBase
from repro.rt.cluster import ClusterConfig, build_spec
from repro.rt.node import Node, NodeConfig
from repro.rt.serve import ServeConfig, ServeNode
from repro.rt.transport import LoopbackTransport
from repro.rt.wire import decode_frame, encode_frame, probe_frame


def _serve_rig(serve_config):
    """A primed source node + serving endpoint, no event loop."""
    config = ClusterConfig(
        processors=("n0", "n1", "n2"),
        links=(("n0", "n1"), ("n1", "n2")),
    )
    time_base = TimeBase()
    node = Node(
        NodeConfig(proc="n0", spec=build_spec(config)),
        LoopbackTransport(),
        clock=MonotonicClockSource(),
        time_base=time_base,
    )
    lt = node.clock.lt_at(time_base.elapsed())
    node.estimator.on_internal(Event(EventId("n0", 0), lt, EventKind.INTERNAL))
    return ServeNode(node, node.transport, serve_config)


def test_serve_probe_throughput(benchmark):
    """decode + admit + bound + encode for one admitted probe."""
    serve = _serve_rig(ServeConfig(bucket_rate=1e9, bucket_burst=1e9))
    probe = encode_frame(probe_frame("c0", serve.endpoint, 7))

    result = benchmark(serve.handle_probe_bytes, probe)

    frame = decode_frame(result).frame
    assert frame.type == "reply" and frame.nonce == 7
    assert serve.stats.replies > 0 and serve.stats.shed_total == 0


def test_serve_shed_fast_path(benchmark):
    """An over-rate probe must be refused cheaply (the overload valve)."""
    serve = _serve_rig(ServeConfig(bucket_rate=1e-6, bucket_burst=1.0))
    probe = encode_frame(probe_frame("c0", serve.endpoint, 7))
    assert decode_frame(serve.handle_probe_bytes(probe)).frame.type == "reply"

    result = benchmark(serve.handle_probe_bytes, probe)

    assert decode_frame(result).frame.type == "shed"
    assert serve.stats.shed.get("overload", 0) > 0


def test_serve_garbage_rejection(benchmark):
    """Undecodable bytes are refused without estimator work."""
    serve = _serve_rig(ServeConfig())
    garbage = b"\x00\x01" + b"x" * 40

    # the refusal costs ~3us - below timer resolution per call, so
    # measure 100 refusals per timing (per-op stats, real resolution)
    result = benchmark.pedantic(
        serve.handle_probe_bytes, args=(garbage,),
        iterations=100, rounds=100, warmup_rounds=2,
    )

    assert result is None
    assert serve.stats.decode_errors > 0 and serve.stats.replies == 0
