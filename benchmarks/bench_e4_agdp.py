"""E4 benchmark - AGDP per-insertion cost scaling (Lemma 3.5).

The paper's bound: O(L^2) time per edge insertion at L live nodes.  We
benchmark a steady-state AGDP workload at several live-set sizes; the
timing series should grow ~quadratically in L (the machine-independent
pair-update counters are asserted by the experiment itself, printed once).
"""

import pytest

from repro.experiments.e4_agdp import steady_state_agdp

from conftest import print_experiment_once

SIZES = [8, 16, 32, 64]


@pytest.mark.parametrize("live", SIZES)
def test_agdp_steady_state_insertions(benchmark, live, request):
    print_experiment_once(
        request, "e4-agdp-cost", live_sizes=(8, 16, 32), steps=60
    )
    result = benchmark(steady_state_agdp, live, 60, degree=3, seed=1)
    # sanity on the benchmarked object: the live target was respected
    assert len(result) <= live + 2
    per_insert = result.stats.pair_updates / result.stats.edges_inserted
    # the L^2 envelope with a generous constant
    assert per_insert <= 4 * (live + 2) ** 2


# the edge-insertion speedup gate: `make bench-compare` asserts the
# compacted numpy backend beats dict by >= 2x at live >= 128 (these ids
# are referenced by the Makefile's --assert-speedup flags)
COMPARISON = [
    pytest.param(live, backend, id=f"{live}-{backend}")
    for live in (96, 128)
    for backend in ("dict", "numpy", "numpy-source-only")
]


@pytest.mark.parametrize("live,backend", COMPARISON)
def test_agdp_backend_comparison(benchmark, live, backend):
    """Backend shoot-out at large live-set sizes.

    ``steps = live + 32`` so the workload actually reaches the live target
    and spends a steady-state phase there (pure pool growth would cap the
    active block well below ``live``).  The dict backend gets pinned
    rounds (it runs hundreds of ms per call; calibration would make the
    suite crawl) while the fast backends use normal calibration - three
    rounds of a ~2 ms function is all jitter.
    """
    args = (live, live + 32)
    kwargs = dict(degree=3, seed=1, backend=backend)
    if backend == "dict":
        result = benchmark.pedantic(
            steady_state_agdp, args=args, kwargs=kwargs, rounds=3, iterations=1
        )
    else:
        result = benchmark(steady_state_agdp, *args, **kwargs)
    assert len(result) <= live + 2
