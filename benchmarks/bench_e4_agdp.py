"""E4 benchmark - AGDP per-insertion cost scaling (Lemma 3.5).

The paper's bound: O(L^2) time per edge insertion at L live nodes.  We
benchmark a steady-state AGDP workload at several live-set sizes; the
timing series should grow ~quadratically in L (the machine-independent
pair-update counters are asserted by the experiment itself, printed once).
"""

import pytest

from repro.experiments.e4_agdp import steady_state_agdp

from conftest import print_experiment_once

SIZES = [8, 16, 32, 64]


@pytest.mark.parametrize("live", SIZES)
def test_agdp_steady_state_insertions(benchmark, live, request):
    print_experiment_once(
        request, "e4-agdp-cost", live_sizes=(8, 16, 32), steps=60
    )
    result = benchmark(steady_state_agdp, live, 60, degree=3, seed=1)
    # sanity on the benchmarked object: the live target was respected
    assert len(result) <= live + 2
    per_insert = result.stats.pair_updates / result.stats.edges_inserted
    # the L^2 envelope with a generous constant
    assert per_insert <= 4 * (live + 2) ** 2


@pytest.mark.parametrize("backend", ["dict", "numpy"])
def test_agdp_backend_comparison(benchmark, backend):
    """Dict vs vectorised numpy backend at a large live-set size."""
    result = benchmark(
        steady_state_agdp, 96, 60, degree=3, seed=1, backend=backend
    )
    assert len(result) <= 98
