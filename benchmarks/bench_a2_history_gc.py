"""A2 benchmark - history GC on vs off (Figure 2 ablation).

Times identical gossip runs with the history buffer garbage collection
enabled and disabled; without GC the payload filter scans an unbounded
buffer on every send.
"""

import pytest

from repro.core import EfficientCSA

from conftest import build_gossip_sim, print_experiment_once


@pytest.mark.parametrize("gc", [True, False], ids=["gc-on", "gc-off"])
def test_history_gc_modes(benchmark, gc, request):
    print_experiment_once(
        request, "a2-history-gc-ablation", durations=(40.0, 80.0)
    )

    def run():
        sim = build_gossip_sim(
            topology="line",
            n=5,
            estimators={
                "efficient": lambda p, s: EfficientCSA(p, s, history_gc=gc)
            },
        )
        sim.run_until(80.0)
        return sim

    sim = benchmark(run)
    peak = max(
        sim.estimator(p, "efficient").history.stats.max_buffer
        for p in sim.network.processors
    )
    if gc:
        assert peak < 100
    else:
        assert peak > 100  # the buffer kept everything
