"""E7 benchmark - the optimal CSA under Cristian-style bursts (Sec 4).

Benchmarks the width-triggered probabilistic workload; the complexity
table is printed once by the experiment.
"""

import pytest

from repro.core import EfficientCSA
from repro.sim import Simulation
from repro.sim.workloads import make_cristian_system

from conftest import print_experiment_once


@pytest.mark.parametrize("clients", [3, 8])
def test_cristian_burst_run(benchmark, clients, request):
    print_experiment_once(
        request, "e7-cristian-pattern", client_counts=(3, 6), duration=150.0
    )

    def run():
        network, workload = make_cristian_system(
            clients, width_threshold=0.05, seed=2, monitor_channel="efficient"
        )
        sim = Simulation(network, seed=2)
        sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s))
        workload.install(sim)
        sim.run_until(150.0)
        return sim, workload

    sim, workload = benchmark(run)
    assert sum(workload.bursts.values()) > 0
    assert sim.trace.link_asymmetry() <= 2
