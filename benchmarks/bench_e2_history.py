"""E2 benchmark - history protocol throughput (Lemma 3.2).

Benchmarks the Figure 2 payload prepare/ingest path over a relay chain;
the report-once experiment table is printed once.
"""

import pytest

from repro.core import EventKind, Event, EventId, HistoryModule

from conftest import print_experiment_once


def relay_round(n_events=50):
    """a generates events, ships to b, b relays to c."""
    a = HistoryModule("a", ["b"])
    b = HistoryModule("b", ["a", "c"])
    c = HistoryModule("c", ["b"])
    a_seq = 0
    b_seq = 0
    for _round in range(n_events):
        send_ab = Event(EventId("a", a_seq), float(a_seq + 1), EventKind.SEND, dest="b")
        a_seq += 1
        a.record_local(send_ab)
        payload, _ = a.prepare_payload("b")
        b.ingest_payload("a", payload)
        recv_b = Event(
            EventId("b", b_seq), float(b_seq + 1), EventKind.RECEIVE, send_eid=send_ab.eid
        )
        b_seq += 1
        b.record_local(recv_b)
        send_bc = Event(EventId("b", b_seq), float(b_seq + 1), EventKind.SEND, dest="c")
        b_seq += 1
        b.record_local(send_bc)
        payload_bc, _ = b.prepare_payload("c")
        c.ingest_payload("b", payload_bc)
    return a, b, c


def test_history_relay_throughput(benchmark, request):
    print_experiment_once(request, "e2-report-once", duration=50.0)
    a, b, c = benchmark(relay_round, 50)
    # everything a generated reached c exactly once
    assert c.known_seq("a") == 49
    assert b.stats.duplicate_records_received == 0
    assert c.stats.duplicate_records_received == 0


def test_payload_preparation_only(benchmark):
    module = HistoryModule("a", ["b", "c"])
    for i in range(200):
        module.record_local(Event(EventId("a", i), float(i + 1), EventKind.INTERNAL))

    def prepare():
        # c never acknowledges, so the buffer stays populated
        payload, _ = module.prepare_payload("b")
        return payload

    # ~3us per op is timer-resolution territory: measure 100 ops per
    # timing so the recorded per-op mean has real resolution and the
    # compare.py ratios stay meaningful.
    payload = benchmark.pedantic(prepare, iterations=100, rounds=100, warmup_rounds=2)
    assert module.buffer_size() >= 1
