"""A1 benchmark - AGDP garbage collection on vs off (Lemma 3.4 ablation).

Times identical synthetic AGDP scripts in both modes: without dead-node
collection every Ausiello update sweeps an ever-growing matrix.
"""

import pytest

from repro.experiments.e4_agdp import steady_state_agdp

from conftest import print_experiment_once


@pytest.mark.parametrize("gc", [True, False], ids=["gc-on", "gc-off"])
def test_agdp_gc_modes(benchmark, gc, request):
    print_experiment_once(
        request, "a1-agdp-gc-ablation", durations=(40.0, 80.0)
    )
    result = benchmark(
        steady_state_agdp, 12, 150, degree=3, seed=3, gc_enabled=gc
    )
    if gc:
        assert len(result) <= 14
    else:
        assert len(result) == 151  # every node ever added is still there
