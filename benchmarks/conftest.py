"""Shared builders for the benchmark harness.

Each ``bench_*`` module regenerates one DESIGN.md experiment: it prints
the experiment's rows (the "table") once per session and benchmarks the
operation whose cost the corresponding paper claim is about.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import EfficientCSA, FullInformationCSA
from repro.sim import Simulation, standard_network, topologies
from repro.sim.workloads import PeriodicGossip, RandomTraffic


def build_gossip_sim(
    *,
    topology="ring",
    n=5,
    seed=0,
    drift_ppm=200.0,
    period=4.0,
    estimators=None,
    loss_prob=0.0,
    loss_detection_delay=3.0,
):
    """A ready-to-run gossip simulation (not yet executed)."""
    if topology == "ring":
        names, links = topologies.ring(n)
    elif topology == "line":
        names, links = topologies.line(n)
    elif topology == "star":
        names, links = topologies.star(n)
    else:
        raise ValueError(f"unknown topology {topology!r}")
    network = standard_network(
        names, links, seed=seed, drift_ppm=drift_ppm, loss_prob=loss_prob
    )
    sim = Simulation(
        network,
        seed=seed,
        loss_detection_delay=loss_detection_delay,
        confirm_deliveries=loss_prob > 0,
    )
    for name, factory in (estimators or {}).items():
        sim.attach_estimators(name, factory)
    PeriodicGossip(period=period, seed=seed).install(sim)
    return sim


def print_experiment_once(request, name, **params):
    """Render an experiment's table once per pytest session."""
    key = f"_printed_{name}"
    cache = request.config
    if getattr(cache, key, False):
        return
    setattr(cache, key, True)
    from repro.experiments import get_experiment

    result = get_experiment(name)(**params)
    print()
    print(result.render())
    assert result.all_passed, f"{name} checks failed"
