"""E3 benchmark - history buffer behaviour across diameters (Lemma 3.3).

Benchmarks full gossip runs on lines of increasing diameter; the space
table (|H_v| vs K1*(D+1)) is printed once by the experiment.
"""

import pytest

from repro.core import EfficientCSA

from conftest import build_gossip_sim, print_experiment_once


@pytest.mark.parametrize("n", [4, 8, 12])
def test_line_gossip_run(benchmark, n, request):
    print_experiment_once(
        request, "e3-history-space", sizes=(4, 6, 8), duration=60.0
    )

    def run():
        sim = build_gossip_sim(
            topology="line",
            n=n,
            estimators={"efficient": lambda p, s: EfficientCSA(p, s)},
        )
        sim.run_until(40.0)
        return sim

    sim = benchmark(run)
    diameter = sim.spec.diameter()
    k1 = sim.trace.link_send_speed()
    for proc in sim.network.processors:
        buffer_peak = sim.estimator(proc, "efficient").history.stats.max_buffer
        assert buffer_peak <= max(k1, 1) * (diameter + 1) + n
