"""Wire codec benchmarks - JSON vs binary on the gossip hot path.

The binary codec's reason to exist is protocol overhead: every gossip
round pays one encode on the sender and one decode on the receiver, and
at cluster scale that marshalling dominated the committed bench
trajectory.  ``test_sync_encode_decode[binary]`` vs ``[json]`` is the
within-run speedup gate (``bench-compare`` pins binary >= 3x on the
sync-frame round trip); the coalesced-flush benchmark covers the
many-frames-per-datagram path that `Node._flush_outbox` emits and
``decode_frames`` consumes.

The 48-record payload mirrors a busy gossip period: six processors,
interleaved sequences, one loss flag - large enough that the payload
body dominates, small enough to stay under the coalescing threshold.
"""

import pytest

from repro.core.events import Event, EventId, EventKind
from repro.core.history import HistoryPayload
from repro.rt.wire import decode_frame, decode_frames, encode_frame, sync_frame


def _sync_frame(n_records=48, n_procs=6):
    records = tuple(
        Event(
            eid=EventId(f"p{i % n_procs}", i // n_procs),
            lt=100.0 + i * 0.25 + (i * 0.137) % 0.01,
            kind=EventKind.INTERNAL,
        )
        for i in range(n_records)
    )
    payload = HistoryPayload(records=records, loss_flags=(EventId("p1", 0),))
    send = Event(eid=EventId("n1", 7), lt=142.5, kind=EventKind.SEND, dest="n2")
    return sync_frame(send, payload)


@pytest.mark.parametrize("codec", ["json", "binary"])
def test_sync_encode_decode(benchmark, codec):
    """One full gossip marshalling round: encode + decode a 48-record sync."""
    frame = _sync_frame()
    blob = encode_frame(frame, codec)

    def round_trip():
        return decode_frame(encode_frame(frame, codec))

    # 10 round trips per timing: scheduler preemptions land in one
    # sample instead of skewing the per-op mean the speedup gate reads
    result = benchmark.pedantic(round_trip, iterations=10, rounds=300, warmup_rounds=5)

    assert result.ok and result.frame == frame
    # the size win is part of the claim: binary must not regress to JSON girth
    if codec == "binary":
        assert len(blob) < len(encode_frame(frame, "json")) / 2


@pytest.mark.parametrize("codec", ["json", "binary"])
def test_coalesced_flush_decode(benchmark, codec):
    """Decode one datagram carrying eight coalesced small sync frames."""
    frames = [_sync_frame(n_records=6) for _ in range(8)]
    datagram = b"".join(encode_frame(frame, codec) for frame in frames)

    def drain():
        count = 0
        for result in decode_frames(datagram):
            assert result.ok
            count += 1
        return count

    assert benchmark.pedantic(drain, iterations=10, rounds=200, warmup_rounds=5) == 8


def test_binary_wire_size_ratio():
    """Not a timing bench: record the size win so regressions are loud."""
    frame = _sync_frame()
    json_size = len(encode_frame(frame, "json"))
    binary_size = len(encode_frame(frame, "binary"))
    assert binary_size * 3 < json_size
