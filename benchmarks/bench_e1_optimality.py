"""E1 benchmark - cost of optimal synchronization (Theorem 2.1 / Sec 3).

Benchmarks a complete gossip execution with the efficient optimal CSA
attached, and the from-scratch oracle computation (full view + Bellman-
Ford) for contrast.  The experiment table (soundness, equality, tightness
checks) is printed once.
"""

import pytest

from repro.core import EfficientCSA, build_sync_graph, external_bounds

from conftest import build_gossip_sim, print_experiment_once


def run_with_efficient_csa():
    sim = build_gossip_sim(
        topology="ring",
        n=5,
        estimators={"efficient": lambda p, s: EfficientCSA(p, s)},
    )
    sim.run_until(60.0)
    return sim


def test_efficient_csa_full_run(benchmark, request):
    print_experiment_once(request, "e1-optimality", duration=40.0)
    sim = benchmark(run_with_efficient_csa)
    for proc in sim.network.processors:
        assert sim.estimator(proc, "efficient").estimate().is_bounded


def test_oracle_from_scratch_query(benchmark):
    """Price of one optimal query recomputed from the whole view - the
    baseline cost the AGDP machinery amortises away."""
    sim = run_with_efficient_csa()
    view = sim.trace.global_view()
    spec = sim.spec
    point = view.last_event("p3").eid

    def query():
        graph = build_sync_graph(view, spec)
        return external_bounds(view, spec, point, graph)

    bound = benchmark(query)
    assert bound.is_bounded
