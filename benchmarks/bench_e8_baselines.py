"""E8 benchmark - per-algorithm processing cost on identical traffic.

The width comparison (who is tighter) is the experiment's table, printed
once; the benchmark measures what each estimator costs to run over the
same execution - the practical price of optimality.
"""

import pytest

from repro.baselines import CristianCSA, DriftFreeFudgeCSA, NTPFilterCSA
from repro.core import EfficientCSA

from conftest import build_gossip_sim, print_experiment_once

FACTORIES = {
    "efficient": lambda p, s: EfficientCSA(p, s),
    "driftfree-fudge": lambda p, s: DriftFreeFudgeCSA(p, s, window=30.0),
    "cristian": lambda p, s: CristianCSA(p, s),
    "ntp": lambda p, s: NTPFilterCSA(p, s),
}


@pytest.mark.parametrize("channel", sorted(FACTORIES))
def test_estimator_run_cost(benchmark, channel, request):
    print_experiment_once(request, "e8-width-vs-baselines", duration=150.0)

    def run():
        sim = build_gossip_sim(
            topology="line",
            n=5,
            estimators={channel: FACTORIES[channel]},
            period=4.0,
        )
        sim.run_until(80.0)
        # include the cost of querying, which differs wildly per algorithm
        for proc in sim.network.processors:
            sim.estimator(proc, channel).estimate()
        return sim

    sim = benchmark(run)
    assert len(sim.trace) > 50
