"""Mop-up tests for public API surfaces not exercised elsewhere."""

import math

import pytest

from repro.core import (
    AGDP,
    DriftSpec,
    EfficientCSA,
    EventId,
    SystemSpec,
    TransitSpec,
)
from repro.experiments.base import ExperimentResult
from repro.sim import Simulation, run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip, RandomTraffic

from .conftest import make_event, send, two_proc_spec


class TestSystemSpecBuild:
    def test_per_item_overrides(self):
        spec = SystemSpec.build(
            source="s",
            processors=["s", "a", "b"],
            links=[("s", "a"), ("a", "b")],
            drift={"a": DriftSpec.from_ppm(10)},
            default_drift=DriftSpec.from_ppm(500),
            transit={("a", "b"): TransitSpec(0.5, 0.6)},
            default_transit=TransitSpec(0.0, 1.0),
        )
        assert spec.drift_of("a") == DriftSpec.from_ppm(10)
        assert spec.drift_of("b") == DriftSpec.from_ppm(500)
        assert spec.transit_of("a", "b") == TransitSpec(0.5, 0.6)
        assert spec.transit_of("s", "a") == TransitSpec(0.0, 1.0)

    def test_build_defaults(self):
        spec = SystemSpec.build(
            source="s", processors=["s", "a"], links=[("s", "a")]
        )
        assert spec.drift_of("a") == DriftSpec.from_ppm(100)
        assert not spec.transit_of("s", "a").is_bounded


class TestViewMisc:
    def test_receive_of_missing_is_none(self):
        from repro.core import View

        view = View([send("p", 0, 1.0, dest="q")])
        assert view.receive_of(EventId("p", 0)) is None

    def test_contains_and_iteration(self):
        from repro.core import View

        events = [make_event("p", i, float(i + 1)) for i in range(3)]
        view = View(events)
        assert EventId("p", 1) in view
        assert EventId("p", 9) not in view
        assert list(view) == [e.eid for e in events]


class TestAGDPMisc:
    def test_distances_from_and_to(self):
        agdp = AGDP(source="s")
        agdp.step("a", [("s", "a", 2.0), ("a", "s", 5.0)])
        assert agdp.distances_from("s") == {"s": 0.0, "a": 2.0}
        assert agdp.distances_to("s") == {"s": 0.0, "a": 5.0}
        with pytest.raises(KeyError):
            agdp.distances_to("ghost")

    def test_nodes_property(self):
        agdp = AGDP(source="s")
        agdp.add_node("a")
        assert agdp.nodes == {"s", "a"}


class TestEstimatorMisc:
    def test_estimate_of_unknown_processor(self):
        spec = two_proc_spec()
        csa = EfficientCSA("a", spec)
        assert not csa.estimate_of("src").is_bounded
        assert not csa.estimate_of("nonexistent").is_bounded

    def test_stats_dataclass_fields(self, line4_run):
        stats = line4_run.sim.estimator("p1", "efficient").stats()
        assert stats.events_observed > 0
        assert stats.records_sent > 0
        assert stats.agdp_edges_inserted > 0
        assert stats.max_payload_records >= 1


class TestHistoryMisc:
    def test_buffered_events_in_learn_order(self):
        from repro.core import HistoryModule

        module = HistoryModule("a", ["b", "c"])
        events = [make_event("a", i, float(i + 1)) for i in range(4)]
        for event in events:
            module.record_local(event)
        assert module.buffered_events() == events


class TestRunnerMisc:
    def test_sample_channels_filter(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        result = run_workload(
            network,
            PeriodicGossip(period=5.0, seed=1),
            {
                "one": lambda p, s: EfficientCSA(p, s),
                "two": lambda p, s: EfficientCSA(p, s),
            },
            duration=20.0,
            seed=1,
            sample_period=10.0,
            sample_channels=("one",),
        )
        assert {s.channel for s in result.samples} == {"one"}

    def test_schedule_after(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        sim = Simulation(network)
        hits = []
        sim.schedule_at(5.0, lambda: sim.schedule_after(2.0, lambda: hits.append(sim.now)))
        sim.run_until(10.0)
        assert hits == [7.0]


class TestWorkloadMisc:
    def test_random_traffic_no_links_noop(self):
        from repro.core import SystemSpec
        from repro.sim import Network, Simulation

        network = Network(source="s", clocks={}, links=[])
        sim = Simulation(network)
        RandomTraffic(rate=1.0, seed=0).install(sim)
        assert sim.run_until(10.0) == 0


class TestExperimentResultMisc:
    def test_render_without_rows(self):
        result = ExperimentResult(experiment="x", description="d")
        text = result.render()
        assert "== x ==" in text
        assert result.all_passed  # vacuous


class TestEventIdMisc:
    def test_succ_chain(self):
        eid = EventId("p", 0)
        assert eid.succ().succ() == EventId("p", 2)
