"""Tests for the general-model synchronizer (arbitrary bounds mappings)."""

import math

import pytest

from repro.core import (
    GeneralSynchronizer,
    InconsistentSpecificationError,
    SpecificationError,
    UnknownEventError,
)


class TestDeclaration:
    def test_points_sequence_per_timeline(self):
        sync = GeneralSynchronizer()
        p0 = sync.add_point("a", 1.0)
        p1 = sync.add_point("a", 2.0)
        assert p0.seq == 0 and p1.seq == 1
        assert len(sync) == 2

    def test_local_times_must_increase(self):
        sync = GeneralSynchronizer()
        sync.add_point("a", 5.0)
        from repro.core import ViewError

        with pytest.raises(ViewError):
            sync.add_point("a", 5.0)

    def test_undeclared_point_rejected(self):
        from repro.core import EventId

        sync = GeneralSynchronizer()
        p = sync.add_point("a", 1.0)
        with pytest.raises(UnknownEventError):
            sync.assert_upper(p, EventId("ghost", 0), 1.0)

    def test_empty_range_rejected(self):
        sync = GeneralSynchronizer()
        p = sync.add_point("a", 1.0)
        q = sync.add_point("b", 1.0)
        with pytest.raises(SpecificationError):
            sync.assert_range(p, q, 5.0, 2.0)


class TestSourceSemantics:
    def test_source_chain_is_rigid(self):
        sync = GeneralSynchronizer(source="s")
        s0 = sync.add_point("s", 10.0)
        s1 = sync.add_point("s", 14.0)
        bound = sync.relative_bounds(s1, s0)
        assert bound.lower == bound.upper == pytest.approx(4.0)

    def test_external_unbounded_without_source(self):
        sync = GeneralSynchronizer(source="s")
        p = sync.add_point("a", 1.0)
        assert not sync.external_bounds(p).is_bounded

    def test_docstring_example(self):
        sync = GeneralSynchronizer(source="clockhouse")
        t0 = sync.add_point("clockhouse", lt=100.0)
        a0 = sync.add_point("sensor", lt=7.0)
        sync.assert_range(a0, t0, 2.0, 5.0)
        bound = sync.external_bounds(a0)
        assert bound.lower == pytest.approx(102.0)
        assert bound.upper == pytest.approx(105.0)


class TestConstraintPropagation:
    def test_chained_ranges_add(self):
        sync = GeneralSynchronizer()
        a = sync.add_point("a", 0.0)
        b = sync.add_point("b", 0.0)
        c = sync.add_point("c", 0.0)
        sync.assert_range(b, a, 1.0, 2.0)
        sync.assert_range(c, b, 10.0, 20.0)
        bound = sync.relative_bounds(c, a)
        assert bound.lower == pytest.approx(11.0)
        assert bound.upper == pytest.approx(22.0)

    def test_redundant_constraint_tightens(self):
        sync = GeneralSynchronizer()
        a = sync.add_point("a", 0.0)
        b = sync.add_point("b", 0.0)
        sync.assert_range(b, a, 0.0, 10.0)
        sync.assert_range(b, a, 3.0, 20.0)  # intersect: [3, 10]
        bound = sync.relative_bounds(b, a)
        assert bound.lower == pytest.approx(3.0)
        assert bound.upper == pytest.approx(10.0)

    def test_triangle_inference(self):
        """A bound to a common reference constrains the pair indirectly."""
        sync = GeneralSynchronizer()
        ref = sync.add_point("ref", 0.0)
        x = sync.add_point("x", 0.0)
        y = sync.add_point("y", 0.0)
        sync.assert_range(x, ref, 0.0, 1.0)
        sync.assert_range(y, ref, 0.5, 0.6)
        bound = sync.relative_bounds(x, y)
        assert bound.lower == pytest.approx(-0.6)
        assert bound.upper == pytest.approx(0.5)

    def test_assert_drift_matches_standard_model(self):
        sync = GeneralSynchronizer(source="s")
        s0 = sync.add_point("s", 0.0)
        a0 = sync.add_point("a", 100.0)
        a1 = sync.add_point("a", 200.0)
        sync.assert_range(a0, s0, 0.0, 0.0)  # calibrated at that instant
        sync.assert_drift("a", alpha=0.99, beta=1.01)
        bound = sync.relative_bounds(a1, a0)
        assert bound.lower == pytest.approx(99.0)
        assert bound.upper == pytest.approx(101.0)

    def test_bad_drift_band(self):
        sync = GeneralSynchronizer()
        with pytest.raises(SpecificationError):
            sync.assert_drift("a", alpha=0.0, beta=1.0)


class TestConsistency:
    def test_consistent_system(self):
        sync = GeneralSynchronizer()
        a = sync.add_point("a", 0.0)
        b = sync.add_point("b", 0.0)
        sync.assert_range(b, a, 1.0, 2.0)
        assert sync.consistent()

    def test_contradiction_detected(self):
        sync = GeneralSynchronizer()
        a = sync.add_point("a", 0.0)
        b = sync.add_point("b", 0.0)
        sync.assert_range(b, a, 1.0, 2.0)
        sync.assert_range(a, b, 1.0, 2.0)  # both strictly after each other
        assert not sync.consistent()
        with pytest.raises(InconsistentSpecificationError):
            sync.relative_bounds(a, b)

    def test_unrelated_points_unbounded(self):
        sync = GeneralSynchronizer()
        a = sync.add_point("a", 0.0)
        b = sync.add_point("b", 0.0)
        bound = sync.relative_bounds(a, b)
        assert bound.lower == -math.inf
        assert bound.upper == math.inf
