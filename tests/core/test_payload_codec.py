"""JSON codec round trips for Event and HistoryPayload.

The wire protocol (repro.rt.wire) ships HistoryPayloads as JSON bytes, so
the to_dict/from_dict pair must be an exact inverse on every well-formed
value - asserted here property-style with the shared strategy library -
and must reject malformed input with ValueError (never a crash deeper in
the stack).
"""

import json

import pytest
from hypothesis import given

from repro.core.events import Event, EventId, EventKind
from repro.core.history import HistoryPayload
from repro.testing.strategies import events, history_payloads


@given(events())
def test_event_round_trip(event):
    data = event.to_dict()
    # the dict must survive a real JSON encode/decode, not just a copy
    restored = Event.from_dict(json.loads(json.dumps(data)))
    assert restored == event
    assert restored.link == event.link


@given(history_payloads())
def test_history_payload_round_trip(payload):
    data = payload.to_dict()
    restored = HistoryPayload.from_dict(json.loads(json.dumps(data)))
    assert restored == payload
    assert restored.size == payload.size


@given(history_payloads())
def test_history_payload_dict_is_json_safe(payload):
    # no NaN/Infinity leaks: strict JSON must accept the document
    json.dumps(payload.to_dict(), allow_nan=False)


def _sample_payload():
    send = Event(EventId("a", 0), 1.0, EventKind.SEND, dest="b")
    recv = Event(EventId("b", 0), 1.5, EventKind.RECEIVE, send_eid=EventId("a", 0))
    return HistoryPayload(records=(send, recv), loss_flags=(EventId("a", 7),))


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.__setitem__("records", "oops"),
        lambda d: d["records"][0].pop("proc"),
        lambda d: d["records"][0].__setitem__("proc", 3),
        lambda d: d["records"][0].__setitem__("seq", -1),
        lambda d: d["records"][0].__setitem__("seq", "zero"),
        lambda d: d["records"][0].__setitem__("lt", "late"),
        lambda d: d["records"][0].__setitem__("lt", float("nan")),
        lambda d: d["records"][0].__setitem__("kind", "teleport"),
        lambda d: d["records"][0].__setitem__("dest", ""),
        lambda d: d["records"][1].__setitem__("send", ["a"]),
        lambda d: d["records"][1].__setitem__("send", ["a", -2]),
    ],
)
def test_malformed_payload_dicts_raise_value_error(mutate):
    data = _sample_payload().to_dict()
    mutate(data)
    with pytest.raises(ValueError):
        HistoryPayload.from_dict(data)


def test_missing_sections_default_to_empty():
    # absent records/loss_flags decode as an empty payload, not an error
    assert HistoryPayload.from_dict({}) == HistoryPayload(records=())


@pytest.mark.parametrize(
    "flags",
    ["oops", [["a"]], [["a", -1]], [["", 3]], [["a", True]], [[3, 3]]],
)
def test_malformed_loss_flags_raise_value_error(flags):
    data = _sample_payload().to_dict()
    data["loss_flags"] = flags
    with pytest.raises(ValueError):
        HistoryPayload.from_dict(data)


def test_inconsistent_event_combinations_raise():
    # from_dict re-runs the Event dataclass invariants: a receive from its
    # own processor is structurally impossible
    bad = {"proc": "a", "seq": 1, "lt": 0.0, "kind": "receive", "send": ["a", 0]}
    with pytest.raises(ValueError):
        Event.from_dict(bad)
    missing_dest = {"proc": "a", "seq": 0, "lt": 0.0, "kind": "send"}
    with pytest.raises(ValueError):
        Event.from_dict(missing_dest)
