"""Tests for the internal-synchronization-style relative_estimate API."""

import pytest

from repro.core import EfficientCSA, relative_bounds
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip

from ..conftest import recv, send, two_proc_spec


class TestHandDriven:
    def test_unbounded_before_contact(self):
        spec = two_proc_spec()
        csa = EfficientCSA("a", spec)
        assert not csa.relative_estimate("a", "src").is_bounded

    def test_one_hop_relative(self):
        spec = two_proc_spec(transit=(0.2, 1.0))
        src = EfficientCSA("src", spec)
        a = EfficientCSA("a", spec)
        s1 = send("src", 0, 10.0, dest="a")
        payload = src.on_send(s1)
        a.on_receive(recv("a", 0, 13.5, s1), payload)
        bound = a.relative_estimate("a", "src")
        # RT(a#0) - RT(src#0) = transit in [0.2, 1.0]
        assert bound.lower == pytest.approx(0.2)
        assert bound.upper == pytest.approx(1.0)
        # antisymmetric
        back = a.relative_estimate("src", "a")
        assert back.lower == pytest.approx(-1.0)
        assert back.upper == pytest.approx(-0.2)

    def test_self_relative_is_zero(self):
        spec = two_proc_spec()
        src = EfficientCSA("src", spec)
        s1 = send("src", 0, 10.0, dest="a")
        src.on_send(s1)
        bound = src.relative_estimate("src", "src")
        assert bound.lower == bound.upper == 0.0


class TestAgainstTheoremOracle:
    def test_matches_relative_bounds_on_run(self, line4_run):
        """relative_estimate == Theorem 2.1 on the oracle local view, and
        contains the true RT difference."""
        trace = line4_run.trace
        spec = line4_run.sim.spec
        global_view = trace.global_view()
        estimator = line4_run.sim.estimator("p2", "efficient")
        last_local = estimator.last_local_event.eid
        local_view = global_view.view_from(last_local)
        procs = line4_run.sim.network.processors
        for proc_a in procs:
            for proc_b in procs:
                last_a = estimator.live.last_event(proc_a)
                last_b = estimator.live.last_event(proc_b)
                if last_a is None or last_b is None:
                    continue
                ours = estimator.relative_estimate(proc_a, proc_b)
                oracle = relative_bounds(local_view, spec, last_a[0], last_b[0])
                if oracle.is_bounded:
                    assert ours.lower == pytest.approx(oracle.lower, abs=1e-7)
                    assert ours.upper == pytest.approx(oracle.upper, abs=1e-7)
                truth = trace.rt_of(last_a[0]) - trace.rt_of(last_b[0])
                assert ours.contains(truth, tolerance=1e-6)

    def test_relative_sync_without_source_traffic(self):
        """Internal synchronization: no source processor in the loop at
        all, yet relative bounds between peers are finite."""
        names, links = topologies.line(3)
        # the source p0 exists but never talks: only p1 <-> p2 gossip
        network = standard_network(names, links, seed=4)
        result = run_workload(
            network,
            PeriodicGossip(period=5.0, seed=4, until_lt=1e9),
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=30.0,
            seed=4,
        )
        estimator = result.sim.estimator("p2", "efficient")
        bound = estimator.relative_estimate("p2", "p1")
        assert bound.is_bounded
        truth = result.trace.rt_of(
            estimator.live.last_event("p2")[0]
        ) - result.trace.rt_of(estimator.live.last_event("p1")[0])
        assert bound.contains(truth, tolerance=1e-6)
