"""View structure validated against networkx as an independent oracle."""

import networkx as nx
import pytest

from repro.core import EventId


def view_as_nx(view):
    graph = nx.DiGraph()
    for eid in view:
        graph.add_node(eid)
        for parent in view.parents(eid):
            graph.add_edge(parent, eid)
    return graph


class TestAgainstNetworkx:
    def test_happens_before_equals_reachability(self, ring5_random_run):
        view = ring5_random_run.trace.global_view()
        graph = view_as_nx(view)
        # spot-check a grid of pairs: last 3 events of each processor
        probes = []
        for proc in view.processors:
            last = view.last_seq(proc)
            probes += [
                EventId(proc, seq) for seq in range(max(0, last - 2), last + 1)
            ]
        for p in probes:
            for q in probes:
                ours = view.happens_before(p, q)
                theirs = p == q or nx.has_path(graph, p, q)
                assert ours == theirs, (p, q)

    def test_view_is_a_dag(self, ring5_random_run):
        view = ring5_random_run.trace.global_view()
        assert nx.is_directed_acyclic_graph(view_as_nx(view))

    def test_view_from_equals_ancestor_closure(self, ring5_random_run):
        view = ring5_random_run.trace.global_view()
        graph = view_as_nx(view)
        point = view.last_event("p3").eid
        expected = set(nx.ancestors(graph, point)) | {point}
        sub = view.view_from(point)
        assert {eid for eid in sub} == expected

    def test_topological_iteration_order(self, line4_run):
        view = line4_run.trace.global_view()
        graph = view_as_nx(view)
        order = {eid: i for i, eid in enumerate(view)}
        for u, v in graph.edges:
            assert order[u] < order[v]
