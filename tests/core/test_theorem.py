"""Tests for the Clock Synchronization Theorem machinery (Theorem 2.1)."""

import math

import pytest

from repro.core import (
    ClockBound,
    EventId,
    check_execution,
    external_bounds,
    extremal_execution,
    relative_bounds,
    source_point,
    build_sync_graph,
)

from ..conftest import make_event, ping_pong_view, recv, send, two_proc_spec


class TestRelativeBounds:
    def test_ping_pong_bounds_by_hand(self):
        """Work the Theorem 2.1 interval out explicitly for the round trip.

        src sends at LT 10, a receives at 13.5, a replies at 14.0, src
        receives at 11.5; transit in [0, 1]; drift 100 ppm.
        """
        view, spec = ping_pong_view()
        p = EventId("a", 0)  # a's receive
        q = EventId("src", 0)  # src's send
        bound = relative_bounds(view, spec, p, q)
        # RT(p) - RT(q) is the forward transit: within [0, 1]
        assert bound.lower >= -1e-9
        assert bound.upper <= 1.0 + 1e-9
        # the reply leg constrains it further: round trip local ~1.5 at src
        # forward transit <= RTT - back transit >= ... at least sanity:
        assert bound.lower <= bound.upper

    def test_source_points_distance_zero(self):
        """Consecutive source events are rigid: exact local difference."""
        view, spec = ping_pong_view()
        p, q = EventId("src", 1), EventId("src", 0)
        bound = relative_bounds(view, spec, p, q)
        assert bound.lower == pytest.approx(1.5)
        assert bound.upper == pytest.approx(1.5)

    def test_symmetry(self):
        view, spec = ping_pong_view()
        p, q = EventId("a", 0), EventId("src", 0)
        fwd = relative_bounds(view, spec, p, q)
        back = relative_bounds(view, spec, q, p)
        assert fwd.lower == pytest.approx(-back.upper)
        assert fwd.upper == pytest.approx(-back.lower)

    def test_unconnected_pair_unbounded(self):
        from repro.core import View

        view = View()
        view.add(make_event("src", 0, 1.0))
        view.add(make_event("a", 0, 1.0))
        spec = two_proc_spec()
        bound = relative_bounds(view, spec, EventId("a", 0), EventId("src", 0))
        assert not bound.is_bounded


class TestExternalBounds:
    def test_no_source_point_unbounded(self):
        from repro.core import View

        view = View([make_event("a", 0, 1.0)])
        spec = two_proc_spec()
        assert not external_bounds(view, spec, EventId("a", 0)).is_bounded

    def test_source_estimates_itself_exactly(self):
        view, spec = ping_pong_view()
        bound = external_bounds(view, spec, EventId("src", 1))
        assert bound.lower == pytest.approx(11.5)
        assert bound.upper == pytest.approx(11.5)

    def test_estimate_contains_consistent_truth(self):
        """Any real-time assignment satisfying the spec must fall inside."""
        view, spec = ping_pong_view()
        p = EventId("a", 1)
        bound = external_bounds(view, spec, p)
        # a consistent assignment: src at real time, transits 0.5, a drift-free
        rt = {
            EventId("src", 0): 10.0,
            EventId("a", 0): 10.5,
            EventId("a", 1): 11.0,
            EventId("src", 1): 11.5,
        }
        assert not check_execution(view, spec, rt)
        assert bound.contains(rt[p], tolerance=1e-9)

    def test_source_point_picks_latest(self):
        view, spec = ping_pong_view()
        assert source_point(view, spec) == EventId("src", 1)


class TestExtremalExecutions:
    @pytest.mark.parametrize("endpoint", ["upper", "lower"])
    def test_ping_pong_attains_endpoints(self, endpoint):
        view, spec = ping_pong_view()
        p = EventId("a", 1)
        sp = source_point(view, spec)
        bound = external_bounds(view, spec, p)
        rt = extremal_execution(view, spec, p, sp, endpoint)
        assert not check_execution(view, spec, rt, tolerance=1e-9)
        target = bound.upper if endpoint == "upper" else bound.lower
        assert rt[p] == pytest.approx(target)

    def test_normalised_to_source(self):
        view, spec = ping_pong_view()
        p = EventId("a", 0)
        rt = extremal_execution(view, spec, p, source_point(view, spec), "upper")
        for eid in (EventId("src", 0), EventId("src", 1)):
            assert rt[eid] == pytest.approx(view.event(eid).lt)

    def test_bad_endpoint_name(self):
        view, spec = ping_pong_view()
        with pytest.raises(ValueError):
            extremal_execution(
                view, spec, EventId("a", 0), EventId("src", 0), "sideways"
            )

    def test_infinite_endpoint_rejected(self):
        from repro.core import View

        view = View()
        view.add(make_event("src", 0, 1.0))
        view.add(make_event("a", 0, 1.0))
        spec = two_proc_spec()
        with pytest.raises(ValueError):
            extremal_execution(view, spec, EventId("a", 0), EventId("src", 0), "upper")

    def test_extremal_on_simulated_trace(self, line4_run):
        """Endpoints attained and legal on a real multi-hop trace."""
        trace = line4_run.trace
        spec = line4_run.sim.spec
        view = trace.global_view()
        graph = build_sync_graph(view, spec)
        sp = source_point(view, spec)
        for proc in ("p1", "p3"):
            p = view.last_event(proc).eid
            bound = external_bounds(view, spec, p, graph)
            for endpoint, target in (("upper", bound.upper), ("lower", bound.lower)):
                rt = extremal_execution(view, spec, p, sp, endpoint, graph=graph)
                assert not check_execution(view, spec, rt, tolerance=1e-7)
                assert rt[p] == pytest.approx(target, abs=1e-7)


class TestCheckExecution:
    def test_true_trace_passes(self, line4_run):
        view = line4_run.trace.global_view()
        errors = check_execution(
            view, line4_run.sim.spec, line4_run.trace.real_times, tolerance=1e-6
        )
        assert errors == []

    def test_detects_drift_violation(self):
        view, spec = ping_pong_view()
        rt = {
            EventId("src", 0): 10.0,
            EventId("a", 0): 10.5,
            EventId("a", 1): 30.0,  # 19.5 real seconds for 0.5 local: impossible
            EventId("src", 1): 30.5,
        }
        errors = check_execution(view, spec, rt)
        assert any("drift violation" in e for e in errors)

    def test_detects_transit_violation(self):
        view, spec = ping_pong_view()
        rt = {
            EventId("src", 0): 10.0,
            EventId("a", 0): 9.5,  # received before sent
            EventId("a", 1): 10.0,
            EventId("src", 1): 10.5,
        }
        errors = check_execution(view, spec, rt)
        assert any("transit violation" in e for e in errors)

    def test_detects_source_drift(self):
        view, spec = ping_pong_view()
        rt = {
            EventId("src", 0): 10.0,
            EventId("a", 0): 10.5,
            EventId("a", 1): 11.0,
            EventId("src", 1): 12.5,  # source advanced 2.5 for 1.5 local
        }
        errors = check_execution(view, spec, rt)
        assert any("source clock" in e for e in errors)

    def test_missing_rt_reported(self):
        view, spec = ping_pong_view()
        errors = check_execution(view, spec, {})
        assert errors and "missing real times" in errors[0]
