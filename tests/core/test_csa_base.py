"""Tests for the shared Estimator base class mechanics."""

import math

import pytest

from repro.core import ClockBound, Estimator

from ..conftest import make_event, two_proc_spec


class Stub(Estimator):
    """Minimal estimator: fixed interval, tracks local events."""

    name = "stub"

    def __init__(self, proc, spec, bound=None):
        super().__init__(proc, spec)
        self._bound = bound or ClockBound.unbounded()

    def on_send(self, event):
        self._track_local(event)
        return None

    def on_receive(self, event, payload):
        self._track_local(event)

    def estimate(self):
        return self._bound


class TestTracking:
    def test_last_local_event(self):
        stub = Stub("a", two_proc_spec())
        assert stub.last_local_event is None
        event = make_event("a", 0, 1.0)
        stub.on_internal(event)
        assert stub.last_local_event == event

    def test_foreign_event_rejected(self):
        stub = Stub("a", two_proc_spec())
        with pytest.raises(ValueError):
            stub.on_internal(make_event("src", 0, 1.0))

    def test_time_going_backwards_rejected(self):
        stub = Stub("a", two_proc_spec())
        stub.on_internal(make_event("a", 0, 5.0))
        with pytest.raises(ValueError):
            stub.on_internal(make_event("a", 1, 5.0))


class TestEstimateNow:
    def test_without_events_passthrough(self):
        stub = Stub("a", two_proc_spec(), ClockBound(1.0, 2.0))
        assert stub.estimate_now(100.0) == ClockBound(1.0, 2.0)

    def test_advances_by_drift(self):
        spec = two_proc_spec(drift_ppm=1000)
        stub = Stub("a", spec, ClockBound(10.0, 11.0))
        stub.on_internal(make_event("a", 0, 50.0))
        advanced = stub.estimate_now(150.0)
        drift = spec.drift_of("a")
        assert advanced.lower == pytest.approx(10.0 + drift.alpha * 100)
        assert advanced.upper == pytest.approx(11.0 + drift.beta * 100)

    def test_unbounded_stays_unbounded(self):
        stub = Stub("a", two_proc_spec())
        stub.on_internal(make_event("a", 0, 1.0))
        assert not stub.estimate_now(100.0).is_bounded

    def test_backwards_query_rejected(self):
        stub = Stub("a", two_proc_spec(), ClockBound(0.0, 1.0))
        stub.on_internal(make_event("a", 0, 10.0))
        with pytest.raises(ValueError):
            stub.estimate_now(9.0)

    def test_default_hooks_are_noops(self):
        from repro.core import EventId

        stub = Stub("a", two_proc_spec())
        stub.on_delivery_confirmed(EventId("a", 0))
        stub.on_loss_detected(EventId("a", 0))
