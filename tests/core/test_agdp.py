"""Tests for the AGDP solver (Figure 3, Lemmas 3.4/3.5).

The central property (Lemma 3.4): after any sequence of AGDP steps, the
distance the solver reports between two live nodes equals the distance in
the full accumulated graph - verified against a from-scratch
Floyd-Warshall on the never-garbage-collected graph, including under
randomized step sequences (hypothesis).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AGDP,
    InconsistentSpecificationError,
    WeightedDigraph,
    floyd_warshall,
)
from repro.experiments.e4_agdp import steady_state_agdp


class TestBasics:
    def test_initial_state(self):
        agdp = AGDP(source="s")
        assert "s" in agdp
        assert agdp.distance("s", "s") == 0.0
        assert agdp.live_nodes == {"s"}

    def test_add_node_isolated(self):
        agdp = AGDP(source="s")
        agdp.add_node("a")
        assert math.isinf(agdp.distance("s", "a"))
        assert agdp.distance("a", "a") == 0.0

    def test_duplicate_node_rejected(self):
        agdp = AGDP(source="s")
        with pytest.raises(ValueError):
            agdp.add_node("s")

    def test_insert_edge_updates_distance(self):
        agdp = AGDP(source="s")
        agdp.add_node("a")
        agdp.insert_edge("s", "a", 2.0)
        assert agdp.distance("s", "a") == 2.0
        agdp.insert_edge("s", "a", 1.0)
        assert agdp.distance("s", "a") == 1.0
        agdp.insert_edge("s", "a", 5.0)  # worse, ignored
        assert agdp.distance("s", "a") == 1.0

    def test_insert_edge_unknown_endpoint(self):
        agdp = AGDP(source="s")
        with pytest.raises(KeyError):
            agdp.insert_edge("s", "ghost", 1.0)

    def test_infinite_edge_ignored(self):
        agdp = AGDP(source="s")
        agdp.add_node("a")
        agdp.insert_edge("s", "a", math.inf)
        assert math.isinf(agdp.distance("s", "a"))

    def test_nan_edge_rejected(self):
        agdp = AGDP(source="s")
        agdp.add_node("a")
        with pytest.raises(ValueError):
            agdp.insert_edge("s", "a", math.nan)

    def test_negative_self_loop_rejected(self):
        agdp = AGDP(source="s")
        with pytest.raises(InconsistentSpecificationError):
            agdp.insert_edge("s", "s", -1.0)

    def test_negative_cycle_detected(self):
        agdp = AGDP(source="s")
        agdp.add_node("a")
        agdp.insert_edge("s", "a", 1.0)
        with pytest.raises(InconsistentSpecificationError):
            agdp.insert_edge("a", "s", -2.0)

    def test_kill_removes_node(self):
        agdp = AGDP(source="s")
        agdp.add_node("a")
        agdp.insert_edge("s", "a", 1.0)
        agdp.kill("a")
        assert "a" not in agdp
        assert len(agdp) == 1

    def test_kill_source_rejected(self):
        agdp = AGDP(source="s")
        with pytest.raises(ValueError):
            agdp.kill("s")

    def test_kill_unknown_rejected(self):
        agdp = AGDP(source="s")
        with pytest.raises(KeyError):
            agdp.kill("ghost")

    def test_step_requires_incident_edges(self):
        agdp = AGDP(source="s")
        agdp.add_node("a")
        with pytest.raises(ValueError):
            agdp.step("b", [("s", "a", 1.0)])


class TestLemma34:
    """Distances through dead nodes survive their garbage collection."""

    def test_path_through_killed_node(self):
        agdp = AGDP(source="s")
        agdp.step("a", [("s", "a", 1.0), ("a", "s", 1.0)])
        agdp.step("b", [("a", "b", 2.0), ("b", "a", 2.0)], kills=["a"])
        # a is gone, but s->b = 3 must survive
        assert "a" not in agdp
        assert agdp.distance("s", "b") == pytest.approx(3.0)
        assert agdp.distance("b", "s") == pytest.approx(3.0)

    def test_chain_of_kills(self):
        agdp = AGDP(source="s")
        previous = "s"
        for i in range(10):
            node = f"n{i}"
            kills = [previous] if previous != "s" else []
            agdp.step(
                node,
                [(previous, node, 1.0), (node, previous, 1.0)],
                kills=kills,
            )
            previous = node
        assert len(agdp) == 2  # source + last
        assert agdp.distance("s", "n9") == pytest.approx(10.0)

    def test_negative_weights_preserved(self):
        agdp = AGDP(source="s")
        agdp.step("a", [("s", "a", 5.0), ("a", "s", -4.0)])
        agdp.step("b", [("a", "b", -1.0), ("b", "a", 2.0)], kills=["a"])
        assert agdp.distance("s", "b") == pytest.approx(4.0)
        assert agdp.distance("b", "s") == pytest.approx(-2.0)


def _oracle_prefix_distances(steps):
    """Yield full-accumulated-graph distances after each step prefix."""
    graph = WeightedDigraph()
    graph.add_node("s")
    for node, edges, _kills in steps:
        graph.add_node(node)
        for x, y, w in edges:
            graph.add_edge(x, y, w)
        yield floyd_warshall(graph)


@st.composite
def agdp_scripts(draw):
    """Random AGDP step sequences with potential-based (safe) weights."""
    n_steps = draw(st.integers(min_value=1, max_value=12))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    potentials = {"s": 0.0}
    live = ["s"]
    steps = []
    for i in range(n_steps):
        node = f"n{i}"
        potentials[node] = rng.uniform(-5, 5)
        degree = rng.randint(0, min(3, len(live)))
        peers = rng.sample(live, degree)
        edges = []
        for peer in peers:
            for x, y in ((node, peer), (peer, node)):
                if rng.random() < 0.8:
                    slack = rng.uniform(0, 2)
                    edges.append((x, y, potentials[y] - potentials[x] + slack))
        kills = []
        killable = [p for p in live if p != "s"]
        if killable and rng.random() < 0.5:
            kills.append(rng.choice(killable))
        steps.append((node, edges, kills))
        live = [p for p in live if p not in kills] + [node]
    return steps


@settings(max_examples=80, deadline=None)
@given(agdp_scripts())
def test_lemma_3_4_randomized(steps):
    """AGDP live-live distances == full-graph distances, after every step."""
    agdp = AGDP(source="s")
    live = {"s"}
    for (node, edges, kills), oracle in zip(steps, _oracle_prefix_distances(steps)):
        agdp.step(node, edges, kills)
        live.add(node)
        live -= set(kills)
        for x in live:
            for y in live:
                expected = oracle[x][y]
                actual = agdp.distance(x, y)
                if math.isinf(expected):
                    assert math.isinf(actual)
                else:
                    assert actual == pytest.approx(expected, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(agdp_scripts())
def test_gc_off_matches_gc_on(steps):
    """The ablation mode returns identical distances for live pairs."""
    on = AGDP(source="s", gc_enabled=True)
    off = AGDP(source="s", gc_enabled=False)
    live = {"s"}
    for node, edges, kills in steps:
        on.step(node, edges, kills)
        off.step(node, edges, kills)
        live.add(node)
        live -= set(kills)
    for x in live:
        for y in live:
            a, b = on.distance(x, y), off.distance(x, y)
            if math.isinf(a):
                assert math.isinf(b)
            else:
                assert a == pytest.approx(b, abs=1e-9)
    assert off.live_nodes == live


class TestStats:
    def test_counters(self):
        agdp = AGDP(source="s")
        agdp.step("a", [("s", "a", 1.0)])
        agdp.step("b", [("a", "b", 1.0)], kills=["a"])
        assert agdp.stats.nodes_added == 3
        assert agdp.stats.nodes_killed == 1
        assert agdp.stats.edges_inserted == 2
        assert agdp.stats.max_nodes == 3
        assert agdp.stats.matrix_cells() == 9

    def test_steady_state_driver_holds_live_target(self):
        agdp = steady_state_agdp(live_target=10, steps=40, seed=1)
        assert len(agdp) <= 12
        assert agdp.stats.nodes_added == 41

    def test_quadratic_cost_growth(self):
        small = steady_state_agdp(live_target=8, steps=60, seed=2)
        large = steady_state_agdp(live_target=32, steps=60, seed=2)
        cost_small = small.stats.pair_updates / small.stats.edges_inserted
        cost_large = large.stats.pair_updates / large.stats.edges_inserted
        # 4x live nodes -> ~16x pair updates; allow generous slack
        assert cost_large > 4 * cost_small
