"""Tests for the Sec 2.3 full-information reference algorithm."""

import pytest

from repro.core import ClockBound, EventId, FullInformationCSA, View

from ..conftest import make_event, recv, send, two_proc_spec


class TestFullInformationCSA:
    def setup_method(self):
        self.spec = two_proc_spec(transit=(0.2, 1.0))
        self.src = FullInformationCSA("src", self.spec)
        self.a = FullInformationCSA("a", self.spec)

    def run_round_trip(self):
        s1 = send("src", 0, 10.0, dest="a")
        payload1 = self.src.on_send(s1)
        r1 = recv("a", 0, 13.5, s1)
        self.a.on_receive(r1, payload1)
        s2 = send("a", 1, 14.0, dest="src")
        payload2 = self.a.on_send(s2)
        r2 = recv("src", 1, 11.5, s2)
        self.src.on_receive(r2, payload2)

    def test_payload_is_whole_view(self):
        s1 = send("src", 0, 10.0, dest="a")
        payload = self.src.on_send(s1)
        assert isinstance(payload, View)
        assert s1.eid in payload

    def test_views_merge(self):
        self.run_round_trip()
        assert len(self.src.view) == 4
        assert len(self.a.view) == 3  # a never saw src's receive

    def test_estimates(self):
        self.run_round_trip()
        # a's last point is its reply send at LT 14.0 (0.5 local after the
        # receive at 13.5).  With 100 ppm drift the extra leg costs
        # (1 - alpha) * 0.5 = (beta - 1) * 0.5 = 5e-5 per direction:
        #   lower: 14.0 - (3.3 + 5e-5)   (forward transit slack 3.5 - 0.2)
        #   upper: 14.0 - (2.5 - 5e-5)   (reply leg: 1.0 - 3.5 = -2.5)
        bound = self.a.estimate()
        assert bound.lower == pytest.approx(14.0 - 3.3 - 5e-5)
        assert bound.upper == pytest.approx(14.0 - 2.5 + 5e-5)
        assert self.src.estimate() == ClockBound.exact(11.5)

    def test_estimate_unbounded_without_source(self):
        assert not self.a.estimate().is_bounded
        self.a.on_internal(make_event("a", 0, 1.0))
        assert not self.a.estimate().is_bounded

    def test_estimate_at_past_point(self):
        self.run_round_trip()
        past = self.src.estimate_at(EventId("src", 0))
        assert past == ClockBound.exact(10.0)

    def test_bad_payload_type(self):
        s1 = send("src", 0, 10.0, dest="a")
        self.src.on_send(s1)
        r1 = recv("a", 0, 13.5, s1)
        with pytest.raises(TypeError):
            self.a.on_receive(r1, {"not": "a view"})

    def test_events_shipped_accounting(self):
        self.run_round_trip()
        assert self.src.events_shipped == 1  # first send: only itself
        assert self.a.events_shipped == 3  # view had grown

    def test_max_view_events_tracks_peak(self):
        self.run_round_trip()
        assert self.src.max_view_events == 4

    def test_loss_hook_is_noop(self):
        s1 = send("src", 0, 10.0, dest="a")
        self.src.on_send(s1)
        self.src.on_loss_detected(s1.eid)
        assert s1.eid in self.src.view
