"""Tests for incremental live-point tracking (Definition 3.1)."""

import pytest

from repro.core import EventId, LiveTracker, ProtocolError, View

from ..conftest import make_event, recv, send


class TestObserve:
    def test_first_event_live(self):
        tracker = LiveTracker()
        dead = tracker.observe(make_event("p", 0, 1.0))
        assert dead == []
        assert tracker.is_live(EventId("p", 0))

    def test_out_of_order_rejected(self):
        tracker = LiveTracker()
        with pytest.raises(ProtocolError):
            tracker.observe(make_event("p", 1, 1.0))

    def test_internal_kills_predecessor(self):
        tracker = LiveTracker()
        tracker.observe(make_event("p", 0, 1.0))
        dead = tracker.observe(make_event("p", 1, 2.0))
        assert dead == [EventId("p", 0)]
        assert not tracker.is_live(EventId("p", 0))

    def test_undelivered_send_survives_successor(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.0, dest="q")
        tracker.observe(s)
        dead = tracker.observe(make_event("p", 1, 2.0))
        assert dead == []
        assert tracker.is_live(s.eid)

    def test_delivery_kills_interior_send(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.0, dest="q")
        tracker.observe(s)
        tracker.observe(make_event("p", 1, 2.0))
        dead = tracker.observe(recv("q", 0, 3.0, s))
        assert dead == [s.eid]

    def test_delivery_keeps_send_if_still_last(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.0, dest="q")
        tracker.observe(s)
        dead = tracker.observe(recv("q", 0, 3.0, s))
        assert dead == []
        assert tracker.is_live(s.eid)  # still the last point at p

    def test_double_delivery_rejected(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.0, dest="q")
        tracker.observe(s)
        tracker.observe(recv("q", 0, 3.0, s))
        with pytest.raises(ProtocolError):
            tracker.observe(recv("q", 1, 4.0, s))

    def test_liveness_of_unknown_event_rejected(self):
        tracker = LiveTracker()
        with pytest.raises(ProtocolError):
            tracker.is_live(EventId("p", 0))

    def test_send_lt_tracked(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.5, dest="q")
        tracker.observe(s)
        assert tracker.send_lt(s.eid) == 1.5
        tracker.observe(recv("q", 0, 3.0, s))
        assert tracker.send_lt(s.eid) is None


class TestLossFlags:
    def test_flag_lost_kills_interior_send(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.0, dest="q")
        tracker.observe(s)
        tracker.observe(make_event("p", 1, 2.0))
        assert tracker.flag_lost(s.eid) == [s.eid]
        assert not tracker.is_live(s.eid)

    def test_flag_lost_keeps_last_point(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.0, dest="q")
        tracker.observe(s)
        assert tracker.flag_lost(s.eid) == []
        assert tracker.is_live(s.eid)  # still last point of p

    def test_flag_idempotent(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.0, dest="q")
        tracker.observe(s)
        tracker.observe(make_event("p", 1, 2.0))
        assert tracker.flag_lost(s.eid) == [s.eid]
        assert tracker.flag_lost(s.eid) == []

    def test_flag_unknown_send_noop(self):
        tracker = LiveTracker()
        assert tracker.flag_lost(EventId("p", 99)) == []

    def test_late_delivery_after_flag_tolerated(self):
        tracker = LiveTracker()
        s = send("p", 0, 1.0, dest="q")
        tracker.observe(s)
        tracker.observe(make_event("p", 1, 2.0))
        tracker.flag_lost(s.eid)
        # the "lost" message shows up anyway: must not blow up
        dead = tracker.observe(recv("q", 0, 3.0, s))
        assert dead == []


class TestAgainstViewOracle:
    def test_matches_view_liveness_on_trace(self, ring5_random_run):
        """The incremental tracker agrees with Definition 3.1 recomputed
        from scratch at every prefix of a real execution."""
        tracker = LiveTracker()
        view = View()
        for record in list(ring5_random_run.trace)[:150]:
            view.add(record.event)
            tracker.observe(record.event)
            assert tracker.live_points() == view.live_points()
        assert tracker.max_live >= 1
        assert tracker.events_observed == min(150, len(ring5_random_run.trace))

    def test_last_event_bookkeeping(self):
        tracker = LiveTracker()
        tracker.observe(make_event("p", 0, 1.0))
        tracker.observe(make_event("p", 1, 2.5))
        eid, lt = tracker.last_event("p")
        assert eid == EventId("p", 1)
        assert lt == 2.5
        assert tracker.last_event("q") is None
        assert tracker.last_seq("q") == -1

    def test_live_count_and_processors(self):
        tracker = LiveTracker()
        tracker.observe(make_event("a", 0, 1.0))
        tracker.observe(make_event("b", 0, 1.0))
        assert tracker.live_count() == 2
        assert tracker.processors == ("a", "b")
