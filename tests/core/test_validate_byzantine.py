"""Validation rejection paths under randomized Byzantine schedules.

Complements ``test_validate.py`` (single-anomaly unit paths) with the
shapes a real liar produces end to end: equivocation *combined* with
truncation in one stream, and causal-closure violations buried in
multi-hop relayed views.  The end-to-end cases drive whole tampered
schedules through the hardened estimator; the unit cases call
:func:`repro.core.validate.validate_payload` directly.
"""

import dataclasses

from hypothesis import given

from repro.core import (
    FAILURE_KINDS,
    EventId,
    HistoryPayload,
    SuspicionPolicy,
    validate_payload,
)
from repro.sim.schedule import Schedule, ScheduleHarness, TamperSpec
from repro.testing.strategies import schedules

from ..conftest import make_event, recv, send
from .test_validate import SPEC, StubKnowledge


def _hardened_harness(schedule):
    from repro.core import EfficientCSA

    return ScheduleHarness(
        schedule,
        estimator_factory=lambda p, s: EfficientCSA(
            p, s, reliable=not schedule.lossy, suspicion=SuspicionPolicy()
        ),
        attach_full=False,
    )


# -- end-to-end: deterministic detection cases -----------------------------------------


def test_equivocation_across_listeners_is_detected():
    """q1 tells q0 and q2 different clocks; q2's relay exposes the lie at q0."""
    schedule = Schedule(
        rates=(1.0, 1.0, 1.0),
        edges=((0, 1), (1, 2), (0, 2)),
        steps=(
            ("send", 1, 0, 0.5),
            ("deliver", 1, 0, 0.3),
            ("send", 1, 2, 0.4),
            ("deliver", 1, 2, 0.3),
            ("send", 2, 0, 0.2),
            ("deliver", 2, 0, 0.4),
        ),
        tamper=TamperSpec(liar=1, modes=("equivocate",), magnitude=0.5, period=1),
    )
    harness = _hardened_harness(schedule)
    harness.run()
    failures = harness.csas["q0"].validation_failures
    assert any(
        f.kind == "equivocation" and f.accused == ("q1",) for f in failures
    ), [f"{f.kind}:{f.accused}" for f in failures]


def test_truncation_surfaces_as_closure_violation_then_gap():
    """A truncated payload leaves a dangling receive, then an inexplicable gap."""
    schedule = Schedule(
        rates=(1.0, 1.0, 1.0),
        edges=((0, 1), (1, 2)),
        steps=(
            # q1#0: send to q2 (padding so later payloads have >1 record)
            ("send", 1, 2, 0.5),
            ("deliver", 1, 2, 0.2),
            # q1#1: send to q0; the shipped payload is truncated, so the
            # receive at q0 references a send record that never arrives
            ("send", 1, 0, 0.3),
            ("deliver", 1, 0, 0.2),
            # q1#2: next send to q0 now *skips* the withheld record
            ("send", 1, 0, 0.3),
            ("deliver", 1, 0, 0.2),
        ),
        tamper=TamperSpec(liar=1, modes=("truncate",), magnitude=0.5, period=1),
    )
    harness = _hardened_harness(schedule)
    harness.run()
    kinds = {f.kind for f in harness.csas["q0"].validation_failures}
    assert kinds & {"dangling-send", "gap"}, kinds


# -- end-to-end: randomized schedules --------------------------------------------------


def _implicates_liar(failure, liar):
    """Whether a ledger entry traces back to the liar's stream.

    Either the liar is accused outright, or the flagged record is one of
    the liar's own events, or it is a receive referencing one of the
    liar's (withheld) sends.
    """
    if liar in failure.accused:
        return True
    record = failure.record
    if record is None:
        return False
    if getattr(record, "proc", None) == liar:
        return True
    send_eid = getattr(record, "send_eid", None)
    return send_eid is not None and send_eid.proc == liar


@given(schedules(min_procs=3, max_procs=5, min_steps=10, max_steps=35, tamper=True))
def test_combined_equivocation_and_truncation_never_misattributes(schedule):
    """Whatever a lying stream does, every ledger entry traces to the liar.

    The liar equivocates *and* truncates in the same stream (the hardest
    attribution case: the dangling/gap echoes of truncation arrive
    interleaved with conflicting copies).  Sender-attributed kinds may
    name an honest relay — Fig 2 relays never ship holes, so a hole in a
    relayed stream structurally blames the shipper until the origin is
    suspected, and :data:`~repro.core.DEFAULT_BLAME_WEIGHTS` zero-weights
    those echoes precisely so the framing never evicts the relay — but
    every entry must still carry the liar's fingerprints (in ``accused``,
    in the flagged record's origin, or in the send it references).
    Unforgeable origin-attributed kinds must accuse exactly the liar,
    nobody self-accuses, processors the liar's data never reached stay
    spotless, and the run never crashes the hardened pipeline.
    """
    tamper = dataclasses.replace(
        schedule.tamper, modes=("equivocate", "truncate"), period=1
    )
    schedule = dataclasses.replace(schedule, tamper=tamper)
    harness = _hardened_harness(schedule)
    harness.run()
    liar = harness.names[schedule.tamper.liar]
    for proc in harness.names:
        csa = harness.csas[proc]
        for failure in csa.validation_failures:
            assert failure.kind in FAILURE_KINDS
            assert proc not in failure.accused  # never self-accusation
            assert _implicates_liar(failure, liar), (proc, failure)
            if failure.kind in ("equivocation", "non-monotone"):
                # unforgeable: only the origin can contradict itself
                assert failure.accused == (liar,)
        if proc not in harness.tainted:
            # the liar's data never reached this processor
            assert not csa.validation_failures
            assert not csa.eviction_events


@given(schedules(min_procs=2, max_procs=4, min_steps=5, max_steps=30))
def test_honest_schedules_never_ledger_anything(schedule):
    """Screening is behaviorally invisible on spec-satisfying executions."""
    harness = _hardened_harness(schedule)
    harness.run()
    for proc in harness.names:
        csa = harness.csas[proc]
        assert csa.validation_failures == []
        assert not csa.eviction_events


# -- unit: causal-closure violations on multi-hop views --------------------------------


def _chain_view():
    """s -> a is the receiver's hop; the payload relays a b/c conversation."""
    s0 = send("b", 0, 1.0, dest="c")
    r0 = recv("c", 0, 1.5, s0)
    s1 = send("c", 1, 2.0, dest="b")
    r1 = recv("b", 1, 2.5, s1)
    return [s0, r0, s1, r1]


def test_multi_hop_relay_with_withheld_send_blames_the_relay():
    """A receive deep in a relayed chain references a send the payload omits."""
    chain = _chain_view()
    ghost = recv("c", 2, 3.5, send("b", 5, 3.0, dest="c"))  # b#5 never shipped
    payload = HistoryPayload(records=tuple(chain + [ghost]), loss_flags=())
    report = validate_payload(
        "b", payload, knowledge=StubKnowledge(), spec=SPEC, receiver="a"
    )
    dangling = [f for f in report.failures if f.kind == "dangling-send"]
    assert dangling and dangling[0].accused == ("b",)
    # closure violations deep in the chain do not reject the whole view
    assert ghost in report.accepted


def test_multi_hop_withheld_send_blames_suspected_origin_over_relay():
    chain = _chain_view()
    ghost = recv("c", 2, 3.5, send("b", 5, 3.0, dest="c"))
    payload = HistoryPayload(records=tuple(chain + [ghost]), loss_flags=())
    report = validate_payload(
        "b",
        payload,
        knowledge=StubKnowledge(),
        spec=SPEC,
        receiver="a",
        suspected=("b",),
    )
    dangling = [f for f in report.failures if f.kind == "dangling-send"]
    assert dangling and dangling[0].accused == ("b",)


def test_multi_hop_send_ref_resolving_to_internal_blames_the_origin():
    """The referenced eid exists two hops away - but is not a send at all."""
    fake_send = make_event("c", 0, 1.0)  # internal event squatting on the id
    rx = recv("b", 0, 1.8, send("c", 0, 1.0, dest="b"))
    payload = HistoryPayload(records=(fake_send, rx), loss_flags=())
    report = validate_payload(
        "b", payload, knowledge=StubKnowledge(), spec=SPEC, receiver="a"
    )
    bad = [f for f in report.failures if f.kind == "bad-send-ref"]
    assert bad and bad[0].accused == ("c",)


def test_equivocation_freezes_the_stream_within_a_payload():
    """After one anomaly, the origin's remaining records drop without blame.

    One poisoned payload is one lie: the equivocation is ledgered, and the
    truncation gap riding the same stream is swallowed silently rather
    than stacking a second accusation in the same screen.
    """
    held = send("b", 0, 1.0, dest="a")
    knowledge = StubKnowledge([held])
    twisted = send("b", 0, 1.7, dest="a")  # equivocation vs the held copy
    skipping = make_event("b", 3, 4.0)  # truncation: b#1, b#2 withheld
    payload = HistoryPayload(records=(twisted, skipping), loss_flags=())
    report = validate_payload(
        "c", payload, knowledge=knowledge, spec=SPEC, receiver="a"
    )
    assert [f.kind for f in report.failures] == ["equivocation"]
    assert report.failures[0].accused == ("b",)
    assert twisted in report.rejected and skipping in report.rejected
    assert report.sanitized.records == ()


def test_equivocation_then_truncation_across_payloads_ledgers_both():
    """Across successive payloads the combined stream earns both kinds."""
    held = send("b", 0, 1.0, dest="a")
    knowledge = StubKnowledge([held])
    twisted = send("b", 0, 1.7, dest="a")
    first = validate_payload(
        "c",
        HistoryPayload(records=(twisted,), loss_flags=()),
        knowledge=knowledge,
        spec=SPEC,
        receiver="a",
    )
    skipping = make_event("b", 3, 4.0)
    second = validate_payload(
        "c",
        HistoryPayload(records=(skipping,), loss_flags=()),
        knowledge=knowledge,
        spec=SPEC,
        receiver="a",
        suspected=("b",),  # the first screen put b on the ledger
    )
    assert [f.kind for f in first.failures] == ["equivocation"]
    assert [f.kind for f in second.failures] == ["gap"]
    # with b already suspected, the gap blames b rather than the relay c
    assert second.failures[0].accused == ("b",)
