"""Space and knowledge hygiene under kill -> rejoin of the same processor.

Three properties keep churn from leaking state:

* :meth:`NumpyAGDP.kill` reclaims slots via swap-with-last, so a
  processor that leaves and rejoins forever (new incarnation points,
  same id) keeps the distance matrix bounded by the *live* population
  (Lemma 3.5), and compaction never perturbs survivor distances.
* :meth:`View.without_events` excises an old incarnation's events
  together with their causal futures, leaving a valid causally closed
  view - the quarantine primitive rebuilds ride on.
* The rejected-seq high-water mark survives a peer's rejoin: once a
  receiver refuses part of the old incarnation's stream, the gap that
  every honest relay now ships is recognised as self-inflicted and
  never blamed on the relay.
"""

import math

import pytest

from repro.core import AGDP, EfficientCSA, HistoryPayload, NumpyAGDP, SuspicionPolicy, View
from repro.core.specs import SystemSpec, TransitSpec

from ..conftest import make_event, recv, send

#: ring s - a - b - c - s; hardened receiver is ``a``
SPEC = SystemSpec.build(
    source="s",
    processors=["s", "a", "b", "c"],
    links=[("s", "a"), ("a", "b"), ("b", "c"), ("c", "s")],
    default_transit=TransitSpec(0.1, 1.0),
)


class TestNumpySlotCompaction:
    def test_repeated_kill_rejoin_keeps_matrix_bounded(self):
        agdp = NumpyAGDP(source="s")
        sizes = set()
        for incarnation in range(40):  # far beyond the initial capacity
            point = ("p", incarnation)
            agdp.step(point, [("s", point, 1.0), (point, "s", 1.0)])
            assert agdp.distance("s", point) == pytest.approx(1.0)
            agdp.kill(point)
            sizes.add(agdp.matrix_size())
        # every incarnation's slot was reclaimed: the footprint after each
        # kill is the steady-state one, never a function of churn count
        assert sizes == {agdp.matrix_size()}
        assert agdp.live_nodes == {"s"}
        assert len(agdp) == 1

    def test_compaction_preserves_survivor_distances(self):
        agdp = NumpyAGDP(source="s")
        agdp.step("a", [("s", "a", 2.0), ("a", "s", 3.0)])
        agdp.step("b", [("a", "b", 1.5), ("b", "a", 2.5)])
        before = {
            (x, y): agdp.distance(x, y)
            for x in ("s", "a", "b")
            for y in ("s", "a", "b")
        }
        for incarnation in range(10):
            point = ("churner", incarnation)
            # the transient sits between a and b: paths through it exist
            # while it lives, but its kill must restore the exact survivor
            # matrix (swap-with-last moves rows/columns, never values)
            agdp.step(point, [("a", point, 10.0), (point, "b", 10.0)])
            agdp.kill(point)
        for pair, value in before.items():
            assert agdp.distance(*pair) == pytest.approx(value)

    def test_rejoin_never_sees_stale_incarnation_state(self):
        agdp = NumpyAGDP(source="s")
        first = ("p", 0)
        agdp.step(first, [("s", first, 1.0), (first, "s", 1.0)])
        agdp.kill(first)
        rejoined = ("p", 1)  # same processor id, next incarnation point
        agdp.step(rejoined, [("s", rejoined, 7.0)])
        # the reused slot carries nothing over: only the fresh edge exists
        assert agdp.distance("s", rejoined) == pytest.approx(7.0)
        assert math.isinf(agdp.distance(rejoined, "s"))
        assert first not in agdp

    def test_churn_parity_with_dict_backend(self):
        dense = NumpyAGDP(source="s")
        reference = AGDP(source="s")
        survivors = ["s"]
        for incarnation in range(12):
            point = ("p", incarnation)
            anchor = survivors[incarnation % len(survivors)]
            edges = [(anchor, point, 1.0 + incarnation), (point, anchor, 2.0)]
            kills = [("p", incarnation - 1)] if incarnation else []
            dense.step(point, edges, kills)
            reference.step(point, edges, kills)
            if incarnation % 3 == 0:
                keeper = ("keep", incarnation)
                dense.step(keeper, [(point, keeper, 0.5)])
                reference.step(keeper, [(point, keeper, 0.5)])
                survivors.append(keeper)
        for x in reference.live_nodes:
            for y in reference.live_nodes:
                expected = reference.distance(x, y)
                actual = dense.distance(x, y)
                if math.isinf(expected):
                    assert math.isinf(actual)
                else:
                    assert actual == pytest.approx(expected)


class TestViewQuarantine:
    def _churn_view(self):
        """p's first incarnation talks to q, then p rejoins and talks again."""
        view = View()
        s0 = send("p", 0, 1.0, dest="q")
        view.add(s0)
        view.add(recv("q", 0, 2.0, s0))
        s1 = send("q", 1, 3.0, dest="p")
        view.add(s1)
        view.add(recv("p", 1, 4.0, s1))  # last event of the old incarnation
        s2 = send("p", 2, 5.0, dest="q")  # post-rejoin traffic
        view.add(s2)
        view.add(recv("q", 2, 6.0, s2))
        return view

    def test_excising_an_incarnation_takes_its_causal_future(self):
        view = self._churn_view()
        # drop the old incarnation's receive: everything after it at p
        # (including the rejoin send) and q's receive of that send go too
        pruned = view.without_events([make_event("p", 1, 4.0).eid])
        assert len(pruned) == 3
        assert pruned.last_seq("p") == 0
        assert pruned.last_seq("q") == 1
        # the remainder is a valid view: every event re-adds cleanly
        rebuilt = View()
        for eid in pruned:
            rebuilt.add(pruned.event(eid))
        assert len(rebuilt) == 3

    def test_excised_view_liveness_is_recomputed(self):
        view = self._churn_view()
        pruned = view.without_events([make_event("q", 2, 6.0).eid])
        # p#2's receive is gone, so the send becomes an undelivered live point
        assert make_event("p", 2, 5.0).eid in pruned.live_points()

    def test_unknown_ids_are_ignored(self):
        view = self._churn_view()
        same = view.without_events([make_event("ghost", 0, 1.0).eid])
        assert len(same) == len(view)

    def test_excising_seq_zero_removes_the_whole_processor(self):
        view = self._churn_view()
        pruned = view.without_events([make_event("p", 0, 1.0).eid])
        assert pruned.events_of("p") == []
        # q#0 (the receive of p#0) and everything after it at q is gone too
        assert pruned.events_of("q") == []


class TestRejectedSeqHighWaterMark:
    """End-to-end: a rejoined peer's self-inflicted gap stays self-inflicted."""

    def _receiver(self):
        return EfficientCSA("a", SPEC, suspicion=SuspicionPolicy())

    def _deliver(self, csa, seq, lt, records):
        """One receive at ``a`` of a send from ``b`` shipping ``records``."""
        s = send("b", seq, lt, dest="a")
        payload = HistoryPayload(records=(s,) + tuple(records))
        csa.on_receive(recv("a", seq, lt + 0.5, s), payload)

    def test_gap_rejection_sets_the_mark(self):
        csa = self._receiver()
        # c was killed and rejoined: its pre-kill records (c#0..c#1) never
        # reached a, so the relayed post-rejoin record opens with a gap
        self._deliver(csa, 0, 5.0, [make_event("c", 2, 4.0)])
        assert [f.kind for f in csa.validation_failures] == ["gap"]
        assert csa.validation_failures[0].accused == ("b",)  # fresh gap: shipper
        assert csa._rejected_hwm == {"c": 2}

    def test_mark_shields_relays_from_recurring_blame(self):
        csa = self._receiver()
        self._deliver(csa, 0, 5.0, [make_event("c", 2, 4.0)])
        blamed_once = csa.suspicion.scores.get("b", 0.0)
        assert blamed_once > 0.0
        # the rejoined stream continues; every honest relay now ships the
        # same hole forever.  The mark recognises it: gap recorded, nobody
        # accused, b's score frozen
        self._deliver(csa, 1, 6.0, [make_event("c", 3, 5.5)])
        gaps = [f for f in csa.validation_failures if f.kind == "gap"]
        assert len(gaps) == 2
        assert gaps[1].accused == ()
        assert csa.suspicion.scores.get("b", 0.0) == blamed_once
        # the mark itself advanced with the newly refused record
        assert csa._rejected_hwm == {"c": 3}

    def test_contiguous_continuation_stays_shielded(self):
        csa = self._receiver()
        self._deliver(csa, 0, 5.0, [make_event("c", 2, 4.0)])
        score_after_first = csa.suspicion.scores.get("b", 0.0)
        # the rejoined stream advances one record at a time: each refusal
        # extends the mark, so the missing range is always exactly what
        # this receiver refused earlier - shielded forever
        self._deliver(csa, 1, 6.0, [make_event("c", 3, 5.5)])
        self._deliver(csa, 2, 7.0, [make_event("c", 4, 6.5)])
        assert csa._rejected_hwm == {"c": 4}
        assert csa.suspicion.scores.get("b", 0.0) == score_after_first
        assert csa.suspicion.evicted_procs == set()

    def test_jump_past_the_mark_is_a_fresh_gap(self):
        csa = self._receiver()
        self._deliver(csa, 0, 5.0, [make_event("c", 2, 4.0)])
        score_after_first = csa.suspicion.scores.get("b", 0.0)
        # c#5 skips c#3..c#4, which this receiver never refused: the hole
        # is NOT self-inflicted, so the shipper is accused again
        self._deliver(csa, 1, 6.0, [make_event("c", 5, 5.5)])
        gaps = [f for f in csa.validation_failures if f.kind == "gap"]
        assert gaps[1].accused == ("b",)
        assert csa.suspicion.scores.get("b", 0.0) > score_after_first
