"""Unit tests for the event data model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Event, EventId, EventKind, link_id


class TestLinkId:
    def test_canonical_order(self):
        assert link_id("b", "a") == ("a", "b")
        assert link_id("a", "b") == ("a", "b")

    def test_symmetric(self):
        assert link_id("x", "y") == link_id("y", "x")

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            link_id("a", "a")

    @given(st.text(min_size=1), st.text(min_size=1))
    def test_always_sorted(self, u, v):
        if u == v:
            with pytest.raises(ValueError):
                link_id(u, v)
        else:
            a, b = link_id(u, v)
            assert a <= b
            assert {a, b} == {u, v}


class TestEventId:
    def test_ordering_is_lexicographic(self):
        assert EventId("a", 1) < EventId("a", 2)
        assert EventId("a", 9) < EventId("b", 0)

    def test_pred_and_succ(self):
        eid = EventId("p", 3)
        assert eid.pred() == EventId("p", 2)
        assert eid.succ() == EventId("p", 4)

    def test_first_event_has_no_pred(self):
        assert EventId("p", 0).pred() is None

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            EventId("p", -1)

    def test_hashable_and_equal(self):
        assert EventId("p", 1) == EventId("p", 1)
        assert len({EventId("p", 1), EventId("p", 1)}) == 1

    def test_str(self):
        assert str(EventId("p", 7)) == "p#7"


class TestEvent:
    def test_internal_event(self):
        event = Event(EventId("p", 0), 1.0, EventKind.INTERNAL)
        assert event.proc == "p"
        assert event.seq == 0
        assert not event.is_send and not event.is_receive
        assert event.link is None

    def test_send_requires_dest(self):
        with pytest.raises(ValueError):
            Event(EventId("p", 0), 1.0, EventKind.SEND)

    def test_send_derives_link(self):
        event = Event(EventId("p", 0), 1.0, EventKind.SEND, dest="q")
        assert event.link == link_id("p", "q")
        assert event.is_send

    def test_receive_requires_send_eid(self):
        with pytest.raises(ValueError):
            Event(EventId("p", 0), 1.0, EventKind.RECEIVE)

    def test_receive_derives_link_from_sender(self):
        event = Event(
            EventId("q", 0), 2.0, EventKind.RECEIVE, send_eid=EventId("p", 5)
        )
        assert event.link == link_id("p", "q")
        assert event.is_receive

    def test_receive_from_self_rejected(self):
        with pytest.raises(ValueError):
            Event(EventId("p", 1), 2.0, EventKind.RECEIVE, send_eid=EventId("p", 0))

    def test_send_cannot_reference_send_eid(self):
        with pytest.raises(ValueError):
            Event(
                EventId("p", 0),
                1.0,
                EventKind.SEND,
                dest="q",
                send_eid=EventId("q", 0),
            )

    def test_internal_cannot_carry_message_attrs(self):
        with pytest.raises(ValueError):
            Event(EventId("p", 0), 1.0, EventKind.INTERNAL, dest="q")

    def test_frozen(self):
        event = Event(EventId("p", 0), 1.0, EventKind.INTERNAL)
        with pytest.raises(AttributeError):
            event.lt = 2.0

    def test_str_tags_kind(self):
        s = Event(EventId("p", 0), 1.0, EventKind.SEND, dest="q")
        r = Event(EventId("q", 0), 2.0, EventKind.RECEIVE, send_eid=s.eid)
        assert "s" in str(s)
        assert "r" in str(r)
