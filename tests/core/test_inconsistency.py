"""Failure injection: violated specifications must be *detected*, not
silently absorbed.

By Theorem 2.1 a consistent view never yields a negative cycle; if a
processor's clock runs outside its advertised bounds, or a link delivers
faster than its declared minimum, the timestamps contradict the spec and
the synchronization graph closes a negative cycle.  The algorithms must
raise :class:`InconsistentSpecificationError` rather than emit an interval
that silently excludes the truth.
"""

import pytest

from repro.core import (
    EfficientCSA,
    FullInformationCSA,
    InconsistentSpecificationError,
    bellman_ford_from,
    build_sync_graph,
    check_execution,
    View,
)

from ..conftest import make_event, recv, send, two_proc_spec


def too_fast_round_trip():
    """A round trip whose local elapsed time at the prober is less than
    two transit lower bounds: physically impossible under the spec."""
    spec = two_proc_spec(transit=(0.4, 1.0), drift_ppm=100)
    view = View()
    s1 = send("src", 0, 10.0, dest="a")
    view.add(s1)
    r1 = recv("a", 0, 50.0, s1)
    view.add(r1)
    s2 = send("a", 1, 50.1, dest="src")
    view.add(s2)
    # src's receive only 0.5 after its send, but 2 * 0.4 transit + the
    # peer's 0.1 local processing cannot fit in 0.5 real seconds
    r2 = recv("src", 1, 10.5, s2)
    view.add(r2)
    return view, spec


class TestDetectionInGraph:
    def test_negative_cycle_in_sync_graph(self):
        view, spec = too_fast_round_trip()
        graph = build_sync_graph(view, spec)
        with pytest.raises(InconsistentSpecificationError):
            bellman_ford_from(graph, view.last_event("src").eid)

    def test_check_execution_rejects_impossible_rt(self):
        view, spec = too_fast_round_trip()
        # no real-time assignment can satisfy this view; even the "true"
        # local times read as real times fail
        rt = {eid: view.event(eid).lt for eid in view}
        assert check_execution(view, spec, rt)


class TestDetectionInAlgorithms:
    def test_efficient_csa_raises(self):
        spec = two_proc_spec(transit=(0.4, 1.0))
        src = EfficientCSA("src", spec)
        a = EfficientCSA("a", spec)
        s1 = send("src", 0, 10.0, dest="a")
        payload1 = src.on_send(s1)
        a.on_receive(recv("a", 0, 50.0, s1), payload1)
        s2 = send("a", 1, 50.1, dest="src")
        payload2 = a.on_send(s2)
        with pytest.raises(InconsistentSpecificationError):
            src.on_receive(recv("src", 1, 10.5, s2), payload2)

    def test_full_information_csa_raises_on_query(self):
        spec = two_proc_spec(transit=(0.4, 1.0))
        src = FullInformationCSA("src", spec)
        a = FullInformationCSA("a", spec)
        s1 = send("src", 0, 10.0, dest="a")
        payload1 = src.on_send(s1)
        a.on_receive(recv("a", 0, 50.0, s1), payload1)
        s2 = send("a", 1, 50.1, dest="src")
        payload2 = a.on_send(s2)
        src.on_receive(recv("src", 1, 10.5, s2), payload2)
        with pytest.raises(InconsistentSpecificationError):
            src.estimate()

    def test_drift_violation_detected(self):
        """A clock advancing twice as fast as advertised, caught via two
        source contacts bracketing the bogus interval."""
        spec = two_proc_spec(transit=(0.0, 0.001), drift_ppm=100)
        src = EfficientCSA("src", spec)
        a = EfficientCSA("a", spec)
        # contact 1: pins a's clock to ~src's 10.0
        s1 = send("src", 0, 10.0, dest="a")
        a.on_receive(recv("a", 0, 100.0, s1), src.on_send(s1))
        # a's clock then shows 50 elapsed while src shows 10 - far beyond
        # 100 ppm - reported back over a tight link
        s2 = send("a", 1, 150.0, dest="src")
        payload2 = a.on_send(s2)
        with pytest.raises(InconsistentSpecificationError):
            src.on_receive(recv("src", 1, 20.0, s2), payload2)
