"""Unit and property tests for execution views (Lamport graphs)."""

import pytest

from repro.core import (
    EventId,
    EventKind,
    View,
    ViewConflictError,
    ViewError,
    UnknownEventError,
)

from ..conftest import make_event, ping_pong_view, recv, send


class TestAdd:
    def test_prefix_enforced(self):
        view = View()
        with pytest.raises(ViewError):
            view.add(make_event("p", 1, 1.0))

    def test_strictly_increasing_lt(self):
        view = View([make_event("p", 0, 1.0)])
        with pytest.raises(ViewError):
            view.add(make_event("p", 1, 1.0))

    def test_receive_before_send_rejected(self):
        view = View()
        s = send("p", 0, 1.0, dest="q")
        with pytest.raises(ViewError):
            view.add(recv("q", 0, 2.0, s))

    def test_receive_wrong_dest_rejected(self):
        view = View()
        s = send("p", 0, 1.0, dest="q")
        view.add(s)
        with pytest.raises(ViewError):
            view.add(recv("r", 0, 2.0, s))

    def test_double_delivery_rejected(self):
        view = View()
        s = send("p", 0, 1.0, dest="q")
        view.add(s)
        view.add(recv("q", 0, 2.0, s))
        with pytest.raises(ViewError):
            view.add(recv("q", 1, 3.0, s))

    def test_receive_of_non_send_rejected(self):
        view = View([make_event("p", 0, 1.0)])
        bad = make_event("q", 0, 2.0, EventKind.RECEIVE, send_eid=EventId("p", 0))
        with pytest.raises(ViewError):
            view.add(bad)

    def test_idempotent_re_add(self):
        event = make_event("p", 0, 1.0)
        view = View([event])
        view.add(event)  # no error
        assert len(view) == 1

    def test_conflicting_re_add_rejected(self):
        view = View([make_event("p", 0, 1.0)])
        with pytest.raises(ViewError):
            view.add(make_event("p", 0, 99.0))


class TestQueries:
    def test_last_event(self):
        view, _spec = ping_pong_view()
        assert view.last_event("src").eid == EventId("src", 1)
        assert view.last_event("a").eid == EventId("a", 1)
        assert view.last_event("nobody") is None

    def test_last_seq(self):
        view, _spec = ping_pong_view()
        assert view.last_seq("src") == 1
        assert view.last_seq("nobody") == -1

    def test_events_of_in_order(self):
        view, _spec = ping_pong_view()
        events = view.events_of("src")
        assert [e.seq for e in events] == [0, 1]

    def test_receive_of(self):
        view, _spec = ping_pong_view()
        assert view.receive_of(EventId("src", 0)) == EventId("a", 0)
        assert view.receive_of(EventId("a", 1)) == EventId("src", 1)

    def test_undelivered_sends_empty_after_pingpong(self):
        view, _spec = ping_pong_view()
        assert view.undelivered_sends == set()

    def test_event_unknown_raises(self):
        view = View()
        with pytest.raises(UnknownEventError):
            view.event(EventId("p", 0))

    def test_iteration_is_topological(self):
        view, _spec = ping_pong_view()
        order = {eid: i for i, eid in enumerate(view)}
        for eid in view:
            for parent in view.parents(eid):
                assert order[parent] < order[eid]


class TestGraphStructure:
    def test_parents(self):
        view, _spec = ping_pong_view()
        r1 = EventId("a", 0)
        assert set(view.parents(r1)) == {EventId("src", 0)}
        s2 = EventId("a", 1)
        assert set(view.parents(s2)) == {EventId("a", 0)}

    def test_children(self):
        view, _spec = ping_pong_view()
        s1 = EventId("src", 0)
        assert set(view.children(s1)) == {EventId("src", 1), EventId("a", 0)}

    def test_happens_before_reflexive(self):
        view, _spec = ping_pong_view()
        p = EventId("src", 0)
        assert view.happens_before(p, p)

    def test_happens_before_chain(self):
        view, _spec = ping_pong_view()
        assert view.happens_before(EventId("src", 0), EventId("src", 1))
        assert view.happens_before(EventId("src", 0), EventId("a", 1))
        assert not view.happens_before(EventId("src", 1), EventId("src", 0))

    def test_happens_before_concurrent(self):
        view = View()
        view.add(make_event("p", 0, 1.0))
        view.add(make_event("q", 0, 1.0))
        assert not view.happens_before(EventId("p", 0), EventId("q", 0))
        assert not view.happens_before(EventId("q", 0), EventId("p", 0))

    def test_view_from_full_chain(self):
        view, _spec = ping_pong_view()
        sub = view.view_from(EventId("src", 1))
        assert len(sub) == len(view)  # everything happened before the reply

    def test_view_from_partial(self):
        view, _spec = ping_pong_view()
        sub = view.view_from(EventId("a", 0))
        assert EventId("src", 0) in sub
        assert EventId("a", 0) in sub
        assert EventId("src", 1) not in sub
        assert EventId("a", 1) not in sub

    def test_view_from_is_causally_closed(self, ring5_random_run):
        gv = ring5_random_run.trace.global_view()
        point = gv.last_event("p2").eid
        sub = gv.view_from(point)
        for eid in sub:
            for parent in sub.parents(eid):
                assert parent in sub


class TestLiveness:
    def test_last_points_live(self):
        view, _spec = ping_pong_view()
        assert view.is_live(EventId("src", 1))
        assert view.is_live(EventId("a", 1))

    def test_delivered_interior_send_dead(self):
        view, _spec = ping_pong_view()
        assert not view.is_live(EventId("src", 0))

    def test_undelivered_send_live(self):
        view = View()
        s = send("p", 0, 1.0, dest="q")
        view.add(s)
        view.add(make_event("p", 1, 2.0))
        assert view.is_live(s.eid)  # undelivered, even though not last

    def test_live_points_matches_definition(self, ring5_random_run):
        """Definition 3.1 cross-check on a real trace, at every prefix."""
        trace = ring5_random_run.trace
        view = View()
        for record in list(trace)[:120]:
            view.add(record.event)
            live = view.live_points()
            for eid in view:
                expected = (
                    view.last_seq(eid.proc) == eid.seq
                    or eid in view.undelivered_sends
                )
                assert (eid in live) == expected

    def test_merge_conflicting_rejected(self):
        a = View([make_event("p", 0, 1.0)])
        b = View([make_event("p", 0, 2.0)])
        with pytest.raises(ViewError):
            a.merge(b)

    def test_merge_extends(self):
        view, _spec = ping_pong_view()
        other = view.copy()
        other.add(make_event("a", 2, 20.0))
        view.merge(other)
        assert EventId("a", 2) in view

    def test_copy_is_independent(self):
        view, _spec = ping_pong_view()
        dup = view.copy()
        dup.add(make_event("a", 2, 20.0))
        assert EventId("a", 2) not in view


class TestConflictDiagnostics:
    """ViewConflictError carries both copies and names the equivocator."""

    def test_merge_conflict_attaches_both_copies(self):
        ours = make_event("p", 0, 1.0)
        theirs = make_event("p", 0, 2.0)
        a = View([ours])
        b = View([theirs])
        with pytest.raises(ViewConflictError) as info:
            a.merge(b)
        error = info.value
        assert error.ours == ours
        assert error.theirs == theirs
        assert error.origin == "p"
        # the message shows both payloads and the originating processor
        assert str(ours) in str(error) and str(theirs) in str(error)
        assert "'p'" in str(error)

    def test_conflicting_re_add_attaches_both_copies(self):
        held = make_event("p", 0, 1.0)
        view = View([held])
        offered = make_event("p", 0, 99.0)
        with pytest.raises(ViewConflictError) as info:
            view.add(offered)
        assert info.value.ours == held
        assert info.value.theirs == offered
        assert info.value.origin == "p"

    def test_merge_readmits_rehabilitated_events(self):
        # an evicted processor's events were excised (with their causal
        # futures); after rehabilitation a peer's view re-ships the full
        # stream and the merge must re-admit it cleanly
        full, _spec = ping_pong_view()
        honest = full.without_events([EventId("a", 0)])
        assert "a" not in honest.processors
        honest.merge(full)  # rehabilitation: the excised prefix returns
        assert set(full) == set(honest)

    def test_merge_of_divergent_rehabilitated_stream_still_conflicts(self):
        # rehabilitation forgives scores, not contradictions: if the
        # re-shipped stream diverges from what we once held, merge refuses
        full, _spec = ping_pong_view()
        trimmed = full.without_events([EventId("a", 1)])
        divergent = trimmed.copy()
        divergent.add(make_event("a", 1, 999.0))
        with pytest.raises(ViewConflictError) as info:
            full.merge(divergent)
        assert info.value.origin == "a"
