"""Self-stabilization: seeded state corruption, detection, exact rebuild.

Every scramble in :data:`~repro.sim.faults.CORRUPTION_SCOPES` must trip
the structural audit, and the recovery (a replay of the durable event
log) must leave the estimator with exactly the estimates of a twin that
was never corrupted - detection happens at the next event hook *or* at
the next read, whichever comes first, so a sampled estimate can never
leak scrambled state.
"""

import math
import random

import pytest

from repro.core import EfficientCSA
from repro.core.specs import DriftSpec, SystemSpec, TransitSpec
from repro.sim.faults import CORRUPTION_SCOPES, scramble_estimator
from repro.core.csa_base import SuspicionPolicy

from ..conftest import make_event, recv, send


def line3_spec() -> SystemSpec:
    return SystemSpec.build(
        source="src",
        processors=["src", "a", "b"],
        links=[("src", "a"), ("a", "b")],
        default_drift=DriftSpec.from_ppm(100.0),
        default_transit=TransitSpec(0.2, 1.0),
    )


def run_script(estimator_a):
    """One round trip src <-> a, driving the passive hooks."""
    spec = estimator_a.spec
    source = EfficientCSA("src", spec)
    s1 = send("src", 0, 10.0, dest="a")
    payload1 = source.on_send(s1)
    estimator_a.on_receive(recv("a", 0, 13.5, s1), payload1)
    s2 = send("a", 1, 14.0, dest="src")
    source.on_receive(recv("src", 1, 11.5, s2), estimator_a.on_send(s2))
    return source


def healing_pair():
    """Two identically-driven self-healing estimators (victim + twin)."""
    spec = line3_spec()
    victim = EfficientCSA("a", spec, self_heal=True, suspicion=SuspicionPolicy())
    twin = EfficientCSA("a", spec, self_heal=True, suspicion=SuspicionPolicy())
    run_script(victim)
    run_script(twin)
    return victim, twin


@pytest.mark.parametrize("scope", CORRUPTION_SCOPES)
def test_scramble_trips_the_structural_audit(scope):
    victim, _twin = healing_pair()
    assert victim.self_check()
    assert scramble_estimator(victim, scope, random.Random(7))
    assert not victim.self_check()


@pytest.mark.parametrize("scope", CORRUPTION_SCOPES)
def test_next_event_hook_recovers_exactly(scope):
    victim, twin = healing_pair()
    assert scramble_estimator(victim, scope, random.Random(7))
    # the next send's entry audit detects and rebuilds from the event log
    s3 = send("a", 2, 15.0, dest="src")
    payload_victim = victim.on_send(s3)
    payload_twin = twin.on_send(send("a", 2, 15.0, dest="src"))
    assert victim.recoveries == 1
    assert len(victim.recovery_events) == 1
    assert victim.self_check()
    assert victim.estimate().lower == pytest.approx(twin.estimate().lower)
    assert victim.estimate().upper == pytest.approx(twin.estimate().upper)
    # the rebuilt history re-reports, receivers dedup: records are a superset
    victim_ids = {record.eid for record in payload_victim.records}
    twin_ids = {record.eid for record in payload_twin.records}
    assert victim_ids >= twin_ids


@pytest.mark.parametrize("scope", CORRUPTION_SCOPES)
def test_read_path_audits_too(scope):
    """Sampling between the scramble and the next event must self-heal."""
    victim, twin = healing_pair()
    assert scramble_estimator(victim, scope, random.Random(11))
    bound = victim.estimate()  # no event hook ran in between
    assert victim.recoveries == 1
    assert bound.lower == pytest.approx(twin.estimate().lower)
    assert bound.upper == pytest.approx(twin.estimate().upper)


def test_estimate_of_matches_twin_after_recovery():
    victim, twin = healing_pair()
    assert scramble_estimator(victim, "agdp", random.Random(3))
    victim.on_internal(make_event("a", 2, 15.0))  # audit runs at entry
    twin.on_internal(make_event("a", 2, 15.0))
    for proc in ("src", "a"):
        ours = victim.estimate_of(proc)
        theirs = twin.estimate_of(proc)
        assert ours.lower == pytest.approx(theirs.lower)
        assert ours.upper == pytest.approx(theirs.upper)


def test_plain_estimator_refuses_the_scramble():
    spec = line3_spec()
    plain = EfficientCSA("a", spec)
    run_script(plain)
    assert not scramble_estimator(plain, "agdp", random.Random(5))
    assert plain.estimate().is_bounded  # untouched


def test_unknown_scope_rejected():
    victim, _twin = healing_pair()
    with pytest.raises(Exception):
        scramble_estimator(victim, "flux-capacitor", random.Random(1))


def test_scramble_before_any_state_is_refused():
    spec = line3_spec()
    empty = EfficientCSA("a", spec, self_heal=True)
    assert not scramble_estimator(empty, "agdp", random.Random(2))


def _unreliable_healing_estimator():
    """A self-healing, debug-checked estimator with one unsettled send."""
    spec = line3_spec()
    victim = EfficientCSA(
        "a",
        spec,
        reliable=False,
        self_heal=True,
        suspicion=SuspicionPolicy(),
        debug_checks=True,
    )
    source = EfficientCSA("src", spec, reliable=False)
    s1 = send("src", 0, 10.0, dest="a")
    victim.on_receive(recv("a", 0, 13.5, s1), source.on_send(s1))
    s2 = send("a", 1, 14.0, dest="src")
    victim.on_send(s2)  # delivery never settles: the token stays pending
    return victim, s2


@pytest.mark.parametrize("settle", ["loss", "confirm"])
def test_loss_and_confirm_hooks_audit_too(settle):
    """A drop or ack landing on corrupted state recovers, never trips debug.

    Found by the churn differential sweep: ``on_loss_detected`` and
    ``on_delivery_confirmed`` fire without a local event, so without an
    entry audit a scramble sat unrepaired while the debug invariant hooks
    validated the poisoned matrix.
    """
    victim, s2 = _unreliable_healing_estimator()
    assert scramble_estimator(victim, "agdp", random.Random(13))
    if settle == "loss":
        victim.on_loss_detected(s2.eid)  # must audit + rebuild, not raise
        assert s2.eid in victim.history.loss_flags
    else:
        victim.on_delivery_confirmed(s2.eid)  # degrades to a no-op
    assert victim.recoveries == 1
    assert victim.self_check()
    assert victim.estimate().is_bounded
