"""Batch APIs are observationally identical to their scalar loops.

The batch-delivery engine path leans on three amortization APIs added
for the wire/batching perf pass: :meth:`ClockModel.lt_batch`,
:meth:`AGDP.step_batch` (both backends), and
:meth:`HistoryModule.prepare_payloads`.  Each one promises *exactly* the
scalar semantics - same values, same stats, same sharing-visible
behavior - so the engine may switch between paths freely without
changing any observable result.  These properties pin that promise
directly, complementing the end-to-end reference parity suite.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AGDP, NumpyAGDP
from repro.core.events import Event, EventId, EventKind
from repro.core.history import HistoryModule
from repro.sim.clock import AffineClock, PerfectClock, PiecewiseDriftingClock

_RTS = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=64,
)


class TestClockBatchParity:
    @given(seed=st.integers(min_value=0, max_value=1_000), rts=_RTS)
    @settings(max_examples=100, deadline=None)
    def test_drifting_clock(self, seed, rts):
        # two fresh clocks from the same seed: batch on one, scalars on
        # the other, so the lazy segment extension can't cross-pollinate
        batch_clock = PiecewiseDriftingClock(seed)
        scalar_clock = PiecewiseDriftingClock(seed)
        assert batch_clock.lt_batch(rts) == [scalar_clock.lt(rt) for rt in rts]

    @given(rts=_RTS)
    @settings(max_examples=50, deadline=None)
    def test_affine_and_perfect(self, rts):
        for clock in (PerfectClock(), AffineClock(rate=1.0 + 150e-6, offset=0.25)):
            assert clock.lt_batch(rts) == [clock.lt(rt) for rt in rts]

    def test_batch_then_scalar_interleaving(self):
        # a batch call must leave the lazy state exactly where the scalar
        # walk would: later scalar reads agree with a scalar-only twin
        batched = PiecewiseDriftingClock(7)
        scalar = PiecewiseDriftingClock(7)
        batched.lt_batch([0.5, 3.0, 9.75])
        for rt in (0.5, 3.0, 9.75):
            scalar.lt(rt)
        for rt in (10.0, 12.5, 40.0):
            assert batched.lt(rt) == scalar.lt(rt)


def _apply_script(agdp, script, *, batch):
    if batch:
        agdp.step_batch(script)
    else:
        for node, edges, kills in script:
            agdp.step(node, edges, kills)
    return agdp


@st.composite
def step_scripts(draw):
    """Well-formed AGDP step scripts: edges incident to the new node."""
    names = [f"n{i}" for i in range(draw(st.integers(min_value=1, max_value=8)))]
    script = []
    live = ["s"]
    for node in names:
        edges = [
            (peer, node, draw(st.floats(min_value=0.01, max_value=5.0)))
            for peer in draw(
                st.lists(st.sampled_from(live), unique=True, min_size=1, max_size=3)
            )
        ]
        kills = []
        killable = [p for p in live if p != "s"]
        if killable and draw(st.booleans()):
            kills.append(draw(st.sampled_from(killable)))
        script.append((node, edges, kills))
        live.append(node)
        live = [p for p in live if p not in kills]
    return script


class TestAGDPBatchParity:
    @given(step_scripts())
    @settings(max_examples=100, deadline=None)
    def test_dict_backend(self, script):
        batched = _apply_script(AGDP(source="s"), script, batch=True)
        scalar = _apply_script(AGDP(source="s"), script, batch=False)
        assert batched.live_nodes == scalar.live_nodes
        for x in batched.live_nodes:
            for y in batched.live_nodes:
                assert batched.distance(x, y) == scalar.distance(x, y)
        assert batched.stats.__dict__ == scalar.stats.__dict__

    @given(step_scripts())
    @settings(max_examples=50, deadline=None)
    def test_numpy_backend_matches_dict_batch(self, script):
        batched = _apply_script(NumpyAGDP(source="s"), script, batch=True)
        scalar = _apply_script(AGDP(source="s"), script, batch=False)
        assert batched.live_nodes == scalar.live_nodes
        for x in batched.live_nodes:
            for y in batched.live_nodes:
                assert batched.distance(x, y) == pytest.approx(
                    scalar.distance(x, y), abs=1e-12
                )


class TestPreparePayloadsParity:
    def _module(self, *, events=6):
        module = HistoryModule("a", ["b", "c", "d"])
        for i in range(events):
            module.record_local(Event(EventId("a", i), float(i + 1), EventKind.INTERNAL))
        return module

    def test_equal_to_per_neighbor_loop(self):
        batched = self._module()
        scalar = self._module()
        many = batched.prepare_payloads(["b", "c", "d"])
        for neighbor in ("b", "c", "d"):
            payload, _token = scalar.prepare_payload(neighbor)
            assert many[neighbor][0] == payload

    def test_identical_views_share_one_payload_object(self):
        module = self._module()
        many = module.prepare_payloads(["b", "c", "d"])
        # fresh module, no watermark divergence: one payload serves all
        assert many["b"][0] is many["c"][0] is many["d"][0]

    def test_diverged_watermarks_get_distinct_payloads(self):
        module = self._module()
        # reliable mode settles the token at prepare time: b's watermark
        # advances immediately, so the next burst diverges b from c
        module.prepare_payload("b")
        module.record_local(Event(EventId("a", 6), 7.0, EventKind.INTERNAL))
        many = module.prepare_payloads(["b", "c"])
        assert many["b"][0] != many["c"][0]
        assert len(many["c"][0].records) > len(many["b"][0].records)

    def test_tokens_are_independent(self):
        module = HistoryModule("a", ["b", "c"], reliable=False)
        module.record_local(Event(EventId("a", 0), 1.0, EventKind.INTERNAL))
        many = module.prepare_payloads(["b", "c"])
        tokens = {neighbor: token for neighbor, (_payload, token) in many.items()}
        module.confirm_delivery(tokens["b"])
        module.abort_delivery(tokens["c"])  # must not raise or cross-confirm
