"""Unit tests for per-processor suspicion scoring, eviction, rehabilitation."""

import pytest

from repro.core import (
    DEFAULT_BLAME_WEIGHTS,
    FAILURE_KINDS,
    EventId,
    SuspicionPolicy,
    SuspicionTracker,
)


def tracker(**kwargs):
    protect = kwargs.pop("protect", ("me", "src"))
    return SuspicionTracker(SuspicionPolicy(**kwargs), protect=protect)


class TestBlameWeights:
    def test_every_failure_kind_has_an_explicit_default_weight(self):
        weighted = {kind for kind, _w in DEFAULT_BLAME_WEIGHTS}
        assert set(FAILURE_KINDS) <= weighted

    def test_unambiguous_kinds_evict_instantly_at_default_threshold(self):
        policy = SuspicionPolicy()
        for kind in ("implausible", "equivocation", "non-monotone", "forged-self"):
            assert policy.weight(kind) >= policy.threshold

    def test_relay_producible_kinds_never_score(self):
        # an honest relay can ship these shapes, so they are ledger-only
        policy = SuspicionPolicy()
        for kind in ("dangling-send", "bad-send-ref", "double-delivery", "bad-flag"):
            assert policy.weight(kind) == 0.0

    def test_explicit_weights_override_defaults(self):
        policy = SuspicionPolicy(blame_weights=(("gap", 10.0),))
        assert policy.weight("gap") == 10.0
        assert policy.weight("equivocation") == 3.0  # default still applies

    def test_unknown_kind_falls_back_to_one(self):
        assert SuspicionPolicy().weight("brand-new-kind") == 1.0


class TestScoring:
    def test_accumulates_to_threshold_then_evicts(self):
        t = tracker(threshold=3.0)
        assert not t.blame("p", "gap", 1.0)  # weight 1.0
        assert not t.blame("p", "quarantine", 2.0)  # weight 1.0
        assert not t.is_evicted("p")
        assert t.blame("p", "gap", 3.0)  # crosses 3.0
        assert t.is_evicted("p")
        assert t.evicted_procs == {"p"}

    def test_zero_weight_kinds_do_not_score(self):
        t = tracker(threshold=1.0)
        for _ in range(10):
            assert not t.blame("p", "dangling-send", 1.0)
        assert t.scores.get("p", 0.0) == 0.0
        assert not t.suspected()

    def test_instant_eviction_on_unambiguous_evidence(self):
        t = tracker(threshold=3.0)
        assert t.blame("p", "equivocation", 1.0)
        assert t.is_evicted("p")

    def test_protected_processors_never_blamed(self):
        t = tracker(threshold=0.5)
        assert not t.blame("me", "equivocation", 1.0)
        assert not t.blame("src", "implausible", 1.0)
        assert not t.suspected() and not t.evicted_procs

    def test_suspected_includes_scored_but_not_evicted(self):
        t = tracker(threshold=5.0)
        t.blame("p", "gap", 1.0)
        assert t.suspected() == {"p"}
        assert not t.is_evicted("p")

    def test_blame_counts_record_multiplicity(self):
        t = tracker(threshold=100.0)
        t.blame("p", "gap", 1.0)
        t.blame("p", "gap", 2.0)
        t.blame("p", "conflict", 3.0)
        assert t.blame_counts[("p", "gap")] == 2
        assert t.blame_counts[("p", "conflict")] == 1

    def test_eviction_fires_once(self):
        t = tracker(threshold=1.0)
        assert t.blame("p", "gap", 1.0)
        assert not t.blame("p", "gap", 2.0)  # already evicted: no new event
        assert len([e for e in t.events if e.action == "evicted"]) == 1


class TestExclusion:
    def test_evicted_processors_events_excluded(self):
        t = tracker(threshold=1.0)
        t.blame("p", "gap", 1.0)
        assert t.is_excluded(EventId("p", 0))
        assert t.is_excluded(EventId("p", 999))
        assert not t.is_excluded(EventId("q", 0))


class TestRehabilitation:
    def test_due_after_clean_window(self):
        t = tracker(threshold=1.0, clean_window=10.0)
        t.blame("p", "gap", 5.0)
        assert t.due_for_rehabilitation(14.9) == []
        assert t.due_for_rehabilitation(15.0) == ["p"]

    def test_new_blame_resets_the_clean_window(self):
        t = tracker(threshold=1.0, clean_window=10.0)
        t.blame("p", "gap", 5.0)
        t.blame("p", "gap", 12.0)  # still lying while evicted
        assert t.due_for_rehabilitation(15.0) == []
        assert t.due_for_rehabilitation(22.0) == ["p"]

    def test_rehabilitation_is_forward_only(self):
        t = tracker(threshold=1.0, clean_window=10.0)
        t.blame("p", "gap", 5.0)
        t.rehabilitate("p", 15.0, frontier=7)
        assert not t.is_evicted("p")
        assert t.scores["p"] == 0.0
        # pre-eviction claims stay excised forever; fresh events re-enter
        assert t.is_excluded(EventId("p", 7))
        assert not t.is_excluded(EventId("p", 8))

    def test_excised_watermark_never_moves_backwards(self):
        t = tracker(threshold=1.0, clean_window=1.0)
        t.blame("p", "gap", 1.0)
        t.rehabilitate("p", 5.0, frontier=10)
        t.blame("p", "gap", 6.0)
        t.rehabilitate("p", 10.0, frontier=4)  # smaller frontier offered
        assert t.is_excluded(EventId("p", 10))

    def test_rehabilitating_non_evicted_raises(self):
        t = tracker()
        with pytest.raises(ValueError):
            t.rehabilitate("p", 1.0, frontier=0)

    def test_event_log_records_both_transitions(self):
        t = tracker(threshold=1.0, clean_window=1.0)
        t.blame("p", "equivocation", 1.0, detail="caught red-handed")
        t.rehabilitate("p", 5.0, frontier=3)
        actions = [(e.proc, e.action) for e in t.events]
        assert actions == [("p", "evicted"), ("p", "rehabilitated")]
        assert t.events[0].detail == "caught red-handed"
        assert "seq 3" in t.events[1].detail
