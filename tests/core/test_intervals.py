"""Unit and property tests for ClockBound interval arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ClockBound, DriftSpec, SpecificationError

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def bounds_strategy():
    return st.tuples(finite, finite).map(
        lambda pair: ClockBound(min(pair), max(pair))
    )


class TestConstruction:
    def test_valid(self):
        bound = ClockBound(1.0, 2.0)
        assert bound.width == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            ClockBound(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(SpecificationError):
            ClockBound(math.nan, 1.0)

    def test_unbounded(self):
        bound = ClockBound.unbounded()
        assert not bound.is_bounded
        assert math.isinf(bound.width)
        assert bound.contains(1e300)

    def test_exact(self):
        bound = ClockBound.exact(5.0)
        assert bound.width == 0.0
        assert bound.contains(5.0)
        assert not bound.contains(5.1)

    def test_midpoint(self):
        assert ClockBound(1.0, 3.0).midpoint == pytest.approx(2.0)

    def test_midpoint_unbounded_raises(self):
        with pytest.raises(SpecificationError):
            ClockBound.unbounded().midpoint


class TestOperations:
    def test_contains_tolerance(self):
        bound = ClockBound(0.0, 1.0)
        assert not bound.contains(1.0000001)
        assert bound.contains(1.0000001, tolerance=1e-6)

    def test_intersect(self):
        a = ClockBound(0.0, 2.0)
        b = ClockBound(1.0, 3.0)
        assert a.intersect(b) == ClockBound(1.0, 2.0)

    def test_intersect_disjoint_raises(self):
        with pytest.raises(SpecificationError):
            ClockBound(0.0, 1.0).intersect(ClockBound(2.0, 3.0))

    def test_shift(self):
        assert ClockBound(1.0, 2.0).shift(0.5) == ClockBound(1.5, 2.5)

    def test_widen(self):
        assert ClockBound(1.0, 2.0).widen(0.5, 0.25) == ClockBound(0.5, 2.25)

    def test_widen_negative_rejected(self):
        with pytest.raises(SpecificationError):
            ClockBound(1.0, 2.0).widen(-0.1, 0.0)

    def test_advance_drift_free(self):
        drift = DriftSpec.perfect()
        assert ClockBound(1.0, 2.0).advance(3.0, drift) == ClockBound(4.0, 5.0)

    def test_advance_with_drift_widens(self):
        drift = DriftSpec.from_ppm(1000)
        advanced = ClockBound(0.0, 0.0).advance(1000.0, drift)
        assert advanced.lower == pytest.approx(999.0)
        assert advanced.upper == pytest.approx(1001.0)

    def test_advance_unbounded_stays_unbounded(self):
        advanced = ClockBound.unbounded().advance(10.0, DriftSpec.perfect())
        assert not advanced.is_bounded


class TestProperties:
    @given(bounds_strategy(), bounds_strategy())
    def test_intersection_inside_both(self, a, b):
        if max(a.lower, b.lower) > min(a.upper, b.upper):
            with pytest.raises(SpecificationError):
                a.intersect(b)
            return
        c = a.intersect(b)
        assert c.lower >= a.lower and c.lower >= b.lower
        assert c.upper <= a.upper and c.upper <= b.upper

    @given(bounds_strategy(), finite)
    def test_shift_preserves_width(self, bound, delta):
        assert bound.shift(delta).width == pytest.approx(bound.width, abs=1e-6)

    @given(
        bounds_strategy(),
        st.floats(min_value=0, max_value=1e5),
        st.floats(min_value=0, max_value=1000),
    )
    def test_advance_soundness(self, bound, elapsed, ppm):
        """If truth in bound and real elapsed is within drift bounds, truth
        stays in the advanced bound."""
        drift = DriftSpec.from_ppm(ppm)
        truth = bound.midpoint
        advanced = bound.advance(elapsed, drift)
        low_elapsed, high_elapsed = drift.elapsed_real_bounds(elapsed)
        for real_elapsed in (low_elapsed, high_elapsed, (low_elapsed + high_elapsed) / 2):
            assert advanced.contains(truth + real_elapsed, tolerance=1e-6)

    @given(bounds_strategy())
    def test_contains_midpoint(self, bound):
        assert bound.contains(bound.midpoint, tolerance=1e-9)
