"""Tests for witness-path reconstruction (why is the interval this wide?)."""

import math

import pytest

from repro.core import (
    EventId,
    build_sync_graph,
    explain_external_bounds,
    external_bounds,
)

from ..conftest import make_event, ping_pong_view, two_proc_spec


class TestOnPingPong:
    def test_witness_weights_sum_to_distance(self):
        view, spec = ping_pong_view()
        p = EventId("a", 1)
        witnesses = explain_external_bounds(view, spec, p)
        bound = external_bounds(view, spec, p)
        lt_p = view.event(p).lt
        upper = witnesses["upper"]
        lower = witnesses["lower"]
        assert upper is not None and lower is not None
        assert sum(s.weight for s in upper.steps) == pytest.approx(upper.distance)
        assert lt_p + upper.distance == pytest.approx(bound.upper)
        assert lt_p - lower.distance == pytest.approx(bound.lower)

    def test_paths_connect_correct_endpoints(self):
        view, spec = ping_pong_view()
        p = EventId("a", 1)
        witnesses = explain_external_bounds(view, spec, p)
        upper = witnesses["upper"]
        assert upper.steps[0].tail == p
        assert upper.steps[-1].head.proc == "src"
        lower = witnesses["lower"]
        assert lower.steps[0].tail.proc == "src"
        assert lower.steps[-1].head == p

    def test_step_kinds_classified(self):
        view, spec = ping_pong_view()
        p = EventId("a", 1)
        witnesses = explain_external_bounds(view, spec, p)
        kinds = {s.kind for w in witnesses.values() for s in w.steps}
        # the reply leg is a single transit edge; no unknown kinds appear
        assert kinds <= {"drift", "transit-upper", "transit-lower"}
        assert kinds & {"transit-upper", "transit-lower"}

    def test_drift_steps_appear_on_multihop(self, line4_run):
        view = line4_run.trace.global_view()
        spec = line4_run.sim.spec
        p = view.last_event("p3").eid
        witnesses = explain_external_bounds(view, spec, p)
        kinds = {s.kind for w in witnesses.values() if w for s in w.steps}
        assert "drift" in kinds  # relaying through p1/p2 crosses their clocks

    def test_dominant_step(self):
        view, spec = ping_pong_view()
        witnesses = explain_external_bounds(view, spec, EventId("a", 1))
        upper = witnesses["upper"]
        dominant = upper.dominant_step()
        assert dominant is not None
        assert dominant.weight == max(s.weight for s in upper.steps)

    def test_describe_renders(self):
        view, spec = ping_pong_view()
        witnesses = explain_external_bounds(view, spec, EventId("a", 1))
        text = witnesses["upper"].describe()
        assert "upper endpoint" in text
        assert "->" in text


class TestEdgeCases:
    def test_no_source_gives_none(self):
        from repro.core import View

        view = View([make_event("a", 0, 1.0)])
        spec = two_proc_spec()
        witnesses = explain_external_bounds(view, spec, EventId("a", 0))
        assert witnesses == {"upper": None, "lower": None}

    def test_unreachable_endpoint_none(self):
        from repro.core import View

        view = View([make_event("src", 0, 1.0), make_event("a", 0, 1.0)])
        spec = two_proc_spec()
        witnesses = explain_external_bounds(view, spec, EventId("a", 0))
        assert witnesses["upper"] is None and witnesses["lower"] is None

    def test_unknown_point(self):
        from repro.core import UnknownEventError, View

        view = View([make_event("src", 0, 1.0)])
        spec = two_proc_spec()
        with pytest.raises(UnknownEventError):
            explain_external_bounds(view, spec, EventId("a", 9))

    def test_source_point_trivial_witness(self):
        view, spec = ping_pong_view()
        sp = EventId("src", 1)
        witnesses = explain_external_bounds(view, spec, sp)
        assert witnesses["upper"].distance == pytest.approx(0.0)
        assert witnesses["upper"].steps == ()


class TestOnSimulatedRun:
    def test_witnesses_explain_every_processor(self, line4_run):
        view = line4_run.trace.global_view()
        spec = line4_run.sim.spec
        for proc in view.processors:
            p = view.last_event(proc).eid
            bound = external_bounds(view, spec, p)
            witnesses = explain_external_bounds(view, spec, p)
            lt_p = view.event(p).lt
            if witnesses["upper"] is not None:
                assert lt_p + witnesses["upper"].distance == pytest.approx(
                    bound.upper, abs=1e-9
                )
                total = sum(s.weight for s in witnesses["upper"].steps)
                assert total == pytest.approx(witnesses["upper"].distance, abs=1e-9)
            if witnesses["lower"] is not None:
                assert lt_p - witnesses["lower"].distance == pytest.approx(
                    bound.lower, abs=1e-9
                )

    def test_multi_hop_witness_crosses_processors(self, line4_run):
        view = line4_run.trace.global_view()
        spec = line4_run.sim.spec
        p = view.last_event("p3").eid
        witnesses = explain_external_bounds(view, spec, p)
        procs_on_path = {s.tail.proc for s in witnesses["upper"].steps}
        assert len(procs_on_path) >= 3  # p3 ... p0 crosses the line


class TestCondensed:
    def test_condensed_merges_drift_runs(self, line4_run):
        view = line4_run.trace.global_view()
        spec = line4_run.sim.spec
        p = view.last_event("p3").eid
        witness = explain_external_bounds(view, spec, p)["lower"]
        condensed = witness.condensed()
        assert len(condensed) < len(witness.steps)
        assert any("drift step(s)" in line for line in condensed)
        text = witness.describe_condensed()
        assert "lower endpoint" in text

    def test_condensed_weight_conservation(self, line4_run):
        """Condensing only reformats: total weight still matches."""
        import re

        view = line4_run.trace.global_view()
        spec = line4_run.sim.spec
        p = view.last_event("p2").eid
        witness = explain_external_bounds(view, spec, p)["upper"]
        total = sum(s.weight for s in witness.steps)
        assert total == pytest.approx(witness.distance, abs=1e-9)
