"""Unit tests for history-payload validation (Byzantine-input screening)."""

import pytest

from repro.core import (
    FAILURE_KINDS,
    EventId,
    EventKind,
    HistoryPayload,
    SystemSpec,
    TransitSpec,
    validate_payload,
)
from repro.core.validate import ValidationFailure

from ..conftest import make_event, recv, send

#: ring s - a - b - c - s; receiver is ``a`` unless a test says otherwise
SPEC = SystemSpec.build(
    source="s",
    processors=["s", "a", "b", "c"],
    links=[("s", "a"), ("a", "b"), ("b", "c"), ("c", "s")],
    default_transit=TransitSpec(0.1, 1.0),
)


class StubKnowledge:
    """Receiver knowledge backed by a plain dict, with a rejection ledger."""

    def __init__(self, events=(), rejected=None):
        self._events = {e.eid: e for e in events}
        self._rejected = dict(rejected or {})

    def known_seq(self, proc):
        return max(
            (eid.seq for eid in self._events if eid.proc == proc), default=-1
        )

    def lookup(self, eid):
        return self._events.get(eid)

    def rejected_seq(self, proc):
        return self._rejected.get(proc, -1)


class LegacyKnowledge:
    """A knowledge implementation predating the ``rejected_seq`` hook."""

    def __init__(self, events=()):
        self._events = {e.eid: e for e in events}

    def known_seq(self, proc):
        return max(
            (eid.seq for eid in self._events if eid.proc == proc), default=-1
        )

    def lookup(self, eid):
        return self._events.get(eid)


def screen(payload, *, sender="b", knowledge=None, receiver="a", **kwargs):
    return validate_payload(
        sender,
        payload,
        knowledge=knowledge or StubKnowledge(),
        spec=SPEC,
        receiver=receiver,
        **kwargs,
    )


def kinds(report):
    return [failure.kind for failure in report.failures]


class TestHonestPayloads:
    def test_empty_payload_is_clean(self):
        payload = HistoryPayload(records=())
        report = screen(payload)
        assert report.ok
        assert report.sanitized == payload
        assert report.accepted == () and report.rejected == ()

    def test_single_event_history(self):
        record = make_event("b", 0, 1.0)
        report = screen(HistoryPayload(records=(record,)))
        assert report.ok
        assert report.accepted == (record,)
        assert report.sanitized.records == (record,)

    def test_honest_chain_passes_unchanged(self):
        payload = HistoryPayload(
            records=(make_event("b", 0, 1.0), make_event("b", 1, 2.0)),
            loss_flags=(EventId("b", 0),),
        )
        report = screen(payload)
        assert report.ok
        assert report.sanitized == payload

    def test_matching_duplicate_is_kept_for_watermarks(self):
        record = make_event("b", 0, 1.0)
        report = screen(
            HistoryPayload(records=(record,)),
            knowledge=StubKnowledge(events=(record,)),
        )
        assert report.ok
        assert report.accepted == (record,)


class TestGaps:
    def test_fresh_gap_blames_the_shipper(self):
        # `b` ships a record of `c` whose predecessors we never saw
        report = screen(HistoryPayload(records=(make_event("c", 2, 5.0),)))
        assert kinds(report) == ["gap"]
        assert report.failures[0].accused == ("b",)
        assert report.rejected and not report.accepted

    def test_gap_in_suspected_stream_blames_the_origin(self):
        report = screen(
            HistoryPayload(records=(make_event("c", 2, 5.0),)),
            suspected=("c",),
        )
        assert kinds(report) == ["gap"]
        assert report.failures[0].accused == ("c",)

    def test_self_inflicted_gap_blames_nobody(self):
        # we rejected c#0..c#1 earlier; honest senders now legitimately
        # skip that range forever - nobody gets blamed for it
        knowledge = StubKnowledge(rejected={"c": 1})
        report = screen(
            HistoryPayload(records=(make_event("c", 2, 5.0),)),
            knowledge=knowledge,
        )
        assert kinds(report) == ["gap"]
        assert report.failures[0].accused == ()
        assert report.rejected  # still unusable: its past is unknown

    def test_self_inflicted_gap_keeps_blaming_a_suspected_origin(self):
        knowledge = StubKnowledge(rejected={"c": 1})
        report = screen(
            HistoryPayload(records=(make_event("c", 2, 5.0),)),
            knowledge=knowledge,
            suspected=("c",),
        )
        assert report.failures[0].accused == ("c",)

    def test_knowledge_without_rejection_ledger_still_works(self):
        report = screen(
            HistoryPayload(records=(make_event("c", 2, 5.0),)),
            knowledge=LegacyKnowledge(),
        )
        assert kinds(report) == ["gap"]
        assert report.failures[0].accused == ("b",)


class TestEquivocation:
    def test_divergent_copy_accuses_the_origin(self):
        held = make_event("c", 0, 1.0)
        offered = make_event("c", 0, 5.0)
        report = screen(
            HistoryPayload(records=(offered,)),
            knowledge=StubKnowledge(events=(held,)),
        )
        assert kinds(report) == ["equivocation"]
        assert report.failures[0].accused == ("c",)
        assert offered in report.rejected

    def test_overlapping_but_divergent_history(self):
        # the receiver learned c#0..c#1 from one neighbor; another ships an
        # overlapping stream that agrees on c#0 but diverges from c#1 on
        held = (make_event("c", 0, 1.0), make_event("c", 1, 2.0))
        divergent = (
            make_event("c", 0, 1.0),  # agrees
            make_event("c", 1, 2.7),  # diverges: equivocation
            make_event("c", 2, 3.5),  # past the fork: silently dropped
        )
        report = screen(
            HistoryPayload(records=divergent),
            knowledge=StubKnowledge(events=held),
        )
        assert kinds(report) == ["equivocation"]
        assert report.failures[0].accused == ("c",)
        assert report.accepted == (divergent[0],)
        assert set(report.rejected) == {divergent[1], divergent[2]}

    def test_contradictory_copies_in_one_payload_blame_the_sender(self):
        report = screen(
            HistoryPayload(
                records=(make_event("c", 0, 1.0), make_event("c", 0, 2.0))
            )
        )
        assert kinds(report) == ["conflict"]
        assert report.failures[0].accused == ("b",)
        assert len(report.accepted) == 1


class TestPerRecordScreens:
    def test_non_monotone_clock_accuses_the_origin(self):
        report = screen(
            HistoryPayload(
                records=(make_event("c", 0, 2.0), make_event("c", 1, 1.5))
            )
        )
        assert kinds(report) == ["non-monotone"]
        assert report.failures[0].accused == ("c",)

    def test_forged_self_event_accuses_the_sender(self):
        report = screen(HistoryPayload(records=(make_event("a", 0, 1.0),)))
        assert kinds(report) == ["forged-self"]
        assert report.failures[0].accused == ("b",)
        assert not report.accepted

    def test_malformed_non_event_record(self):
        report = screen(HistoryPayload(records=("garbage",)))
        assert kinds(report) == ["malformed"]
        assert report.failures[0].accused == ("b",)

    def test_unknown_processor_is_malformed(self):
        report = screen(HistoryPayload(records=(make_event("z", 0, 1.0),)))
        assert kinds(report) == ["malformed"]

    def test_send_over_nonexistent_link_is_malformed(self):
        # b - s is not a link of the ring
        report = screen(HistoryPayload(records=(send("b", 0, 1.0, dest="s"),)))
        assert kinds(report) == ["malformed"]
        assert report.failures[0].accused == ("b",)

    def test_ignored_origin_dropped_silently(self):
        report = screen(
            HistoryPayload(records=(make_event("c", 0, 1.0),)),
            ignored=("c",),
        )
        assert report.ok  # no failure: the stream is frozen, not news
        assert report.rejected and not report.accepted


class TestReceiveClosure:
    def test_dangling_send_is_kept_but_ledgered(self):
        receive = recv("c", 0, 2.0, send("b", 5, 1.0, dest="c"))
        report = screen(HistoryPayload(records=(receive,)))
        assert kinds(report) == ["dangling-send"]
        assert report.failures[0].accused == ("b",)
        assert receive in report.accepted  # graph guards cope with it

    def test_bad_send_ref_accuses_the_referenced_origin(self):
        squatter = make_event("b", 0, 1.0)  # an internal where a send should be
        receive = make_event(
            "c", 0, 2.0, EventKind.RECEIVE, send_eid=squatter.eid
        )
        report = screen(
            HistoryPayload(records=(receive,)),
            knowledge=StubKnowledge(events=(squatter,)),
        )
        assert kinds(report) == ["bad-send-ref"]
        assert report.failures[0].accused == ("b",)
        assert receive in report.accepted

    def test_double_delivery_ledgered_and_kept(self):
        message = send("b", 0, 1.0, dest="c")
        first = recv("c", 0, 2.0, message)
        echo = recv("c", 1, 2.5, message)
        report = screen(HistoryPayload(records=(message, first, echo)))
        assert kinds(report) == ["double-delivery"]
        assert report.failures[0].accused == ("b",)
        assert set(report.accepted) == {message, first, echo}


class TestPlausibility:
    def _round_trip(self, reply_lt):
        """a sends to b; b replies claiming ``reply_lt`` on its clock.

        The receiver ``a`` holds its own send (trusted anchor) and
        generates the arrival event locally at lt 11.0, so a's clock
        brackets the whole round trip at ~1.0 local units.
        """
        query = send("a", 0, 10.0, dest="b")
        b_recv = recv("b", 0, 10.2, query)
        b_reply = send("b", 1, reply_lt, dest="a")
        arrival = recv("a", 1, 11.0, b_reply)
        report = screen(
            HistoryPayload(records=(b_recv, b_reply)),
            knowledge=StubKnowledge(events=(query,)),
            receive_event=arrival,
        )
        return report, (b_recv, b_reply)

    def test_impossible_round_trip_timing_rejected(self):
        # b claims 7.8 local units elapsed inside a round trip that a's
        # own (trusted) clock brackets at ~1.0: no in-spec execution fits
        report, claimed = self._round_trip(reply_lt=18.0)
        assert kinds(report) == ["implausible"]
        assert report.failures[0].accused == ("b",)
        assert set(report.rejected) == set(claimed)
        assert not report.accepted

    def test_feasible_round_trip_timing_accepted(self):
        report, claimed = self._round_trip(reply_lt=10.5)
        assert report.ok
        assert report.accepted == claimed

    def test_shared_cycle_ledgered_without_rejection(self):
        # the same impossible round trip, but claimed entirely by third
        # parties b and c: the cycle proves one of them lied without
        # saying which, so both are ledgered lightly and every record is
        # kept - rejecting would freeze the honest party's stream here
        # forever (senders never re-ship confirmed ranges)
        b_query = send("b", 0, 10.0, dest="c")
        c_recv = recv("c", 0, 10.2, b_query)
        c_reply = send("c", 1, 18.0, dest="b")
        b_arrival = recv("b", 1, 11.0, c_reply)
        records = (b_query, c_recv, c_reply, b_arrival)
        report = screen(HistoryPayload(records=records))
        assert kinds(report) == ["implausible-shared"]
        assert report.failures[0].accused == ("b", "c")
        assert report.accepted == records
        assert not report.rejected


class TestFlags:
    def test_bad_flags_dropped_good_flags_kept(self):
        payload = HistoryPayload(
            records=(),
            loss_flags=("junk", EventId("z", 0), EventId("c", 3)),
        )
        report = screen(payload)
        # one ledger entry per (kind, accused) per payload, however many
        # bad flags rode along
        assert kinds(report) == ["bad-flag"]
        assert report.accepted_flags == (EventId("c", 3),)
        assert set(report.rejected_flags) == {"junk", EventId("z", 0)}


class TestFailureObjects:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ValidationFailure("made-up-kind", ("b",), "nope")

    def test_all_kinds_constructible(self):
        for kind in FAILURE_KINDS:
            failure = ValidationFailure(kind, ("b",), "detail")
            assert failure.kind == kind

    def test_blame_deduplicated_within_a_payload(self):
        # many records with the same anomaly produce ONE failure: blame is
        # proportional to payloads, not records
        report = screen(
            HistoryPayload(
                records=(make_event("c", 5, 5.0), make_event("c", 7, 7.0))
            )
        )
        assert kinds(report) == ["gap"]
