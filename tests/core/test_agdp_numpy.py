"""The numpy AGDP backend is observationally identical to the dict one."""

import math

import pytest
from hypothesis import given, settings

from repro.core import AGDP, EfficientCSA, InconsistentSpecificationError, NumpyAGDP
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import RandomTraffic

from .test_agdp import agdp_scripts


class TestBasicParity:
    def test_small_script(self):
        for cls in (AGDP, NumpyAGDP):
            agdp = cls(source="s")
            agdp.step("a", [("s", "a", 1.0), ("a", "s", 1.0)])
            agdp.step("b", [("a", "b", 2.0), ("b", "a", 2.0)], kills=["a"])
            assert agdp.distance("s", "b") == pytest.approx(3.0)
            assert agdp.live_nodes == {"s", "b"}

    def test_errors_match(self):
        agdp = NumpyAGDP(source="s")
        with pytest.raises(ValueError):
            agdp.add_node("s")
        with pytest.raises(KeyError):
            agdp.kill("ghost")
        with pytest.raises(ValueError):
            agdp.kill("s")
        agdp.add_node("a")
        with pytest.raises(ValueError):
            agdp.insert_edge("s", "a", math.nan)
        agdp.insert_edge("s", "a", 1.0)
        with pytest.raises(InconsistentSpecificationError):
            agdp.insert_edge("a", "s", -2.0)
        with pytest.raises(InconsistentSpecificationError):
            agdp.insert_edge("s", "s", -1.0)

    def test_capacity_growth(self):
        agdp = NumpyAGDP(source="s")
        previous = "s"
        for i in range(100):  # far beyond the initial capacity of 16
            node = f"n{i}"
            agdp.step(node, [(previous, node, 1.0)])
            previous = node
        assert agdp.distance("s", "n99") == pytest.approx(100.0)
        assert len(agdp) == 101

    def test_slot_reuse_after_kill(self):
        agdp = NumpyAGDP(source="s")
        agdp.step("a", [("s", "a", 1.0)])
        agdp.kill("a")
        agdp.step("b", [("s", "b", 7.0)])
        # b may reuse a's slot; no stale distances may leak
        assert agdp.distance("s", "b") == pytest.approx(7.0)
        assert math.isinf(agdp.distance("b", "s"))

    def test_distances_from_to(self):
        agdp = NumpyAGDP(source="s")
        agdp.step("a", [("s", "a", 2.0), ("a", "s", 3.0)])
        assert agdp.distances_from("s") == {"s": 0.0, "a": 2.0}
        assert agdp.distances_to("s") == {"s": 0.0, "a": 3.0}

    def test_gc_disabled_retains_dead(self):
        agdp = NumpyAGDP(source="s", gc_enabled=False)
        agdp.step("a", [("s", "a", 1.0)])
        agdp.step("b", [("a", "b", 1.0)], kills=["a"])
        assert "a" in agdp
        assert agdp.live_nodes == {"s", "b"}
        assert agdp.distance("s", "a") == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(agdp_scripts())
def test_numpy_matches_dict_backend(steps):
    dict_agdp = AGDP(source="s")
    np_agdp = NumpyAGDP(source="s")
    live = {"s"}
    for node, edges, kills in steps:
        dict_agdp.step(node, edges, kills)
        np_agdp.step(node, edges, kills)
        live.add(node)
        live -= set(kills)
        for x in live:
            for y in live:
                a = dict_agdp.distance(x, y)
                b = np_agdp.distance(x, y)
                if math.isinf(a):
                    assert math.isinf(b)
                else:
                    assert b == pytest.approx(a, abs=1e-9)


class TestBackendInCSA:
    def test_estimates_identical_across_backends(self):
        names, links = topologies.ring(5)
        network = standard_network(names, links, seed=21, drift_ppm=300)
        result = run_workload(
            network,
            RandomTraffic(rate=3.0, seed=21),
            {
                "dict": lambda p, s: EfficientCSA(p, s, agdp_backend="dict"),
                "numpy": lambda p, s: EfficientCSA(p, s, agdp_backend="numpy"),
            },
            duration=40.0,
            seed=21,
            sample_period=5.0,
        )
        assert result.soundness_violations() == []
        for proc in names:
            a = result.sim.estimator(proc, "dict").estimate()
            b = result.sim.estimator(proc, "numpy").estimate()
            if not (a.is_bounded and b.is_bounded):
                assert a.lower == b.lower and a.upper == b.upper
                continue
            assert b.lower == pytest.approx(a.lower, abs=1e-9)
            assert b.upper == pytest.approx(a.upper, abs=1e-9)

    def test_unknown_backend_rejected(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        with pytest.raises(ValueError):
            EfficientCSA("p1", network.spec, agdp_backend="fortran")
