"""The numpy AGDP backend is observationally identical to the dict one."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AGDP,
    EfficientCSA,
    InconsistentSpecificationError,
    NumpyAGDP,
    SuspicionPolicy,
)
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import RandomTraffic

from .test_agdp import agdp_scripts


class TestBasicParity:
    def test_small_script(self):
        for cls in (AGDP, NumpyAGDP):
            agdp = cls(source="s")
            agdp.step("a", [("s", "a", 1.0), ("a", "s", 1.0)])
            agdp.step("b", [("a", "b", 2.0), ("b", "a", 2.0)], kills=["a"])
            assert agdp.distance("s", "b") == pytest.approx(3.0)
            assert agdp.live_nodes == {"s", "b"}

    def test_errors_match(self):
        agdp = NumpyAGDP(source="s")
        with pytest.raises(ValueError):
            agdp.add_node("s")
        with pytest.raises(KeyError):
            agdp.kill("ghost")
        with pytest.raises(ValueError):
            agdp.kill("s")
        agdp.add_node("a")
        with pytest.raises(ValueError):
            agdp.insert_edge("s", "a", math.nan)
        agdp.insert_edge("s", "a", 1.0)
        with pytest.raises(InconsistentSpecificationError):
            agdp.insert_edge("a", "s", -2.0)
        with pytest.raises(InconsistentSpecificationError):
            agdp.insert_edge("s", "s", -1.0)

    def test_capacity_growth(self):
        agdp = NumpyAGDP(source="s")
        previous = "s"
        for i in range(100):  # far beyond the initial capacity of 16
            node = f"n{i}"
            agdp.step(node, [(previous, node, 1.0)])
            previous = node
        assert agdp.distance("s", "n99") == pytest.approx(100.0)
        assert len(agdp) == 101

    def test_slot_reuse_after_kill(self):
        agdp = NumpyAGDP(source="s")
        agdp.step("a", [("s", "a", 1.0)])
        agdp.kill("a")
        agdp.step("b", [("s", "b", 7.0)])
        # b may reuse a's slot; no stale distances may leak
        assert agdp.distance("s", "b") == pytest.approx(7.0)
        assert math.isinf(agdp.distance("b", "s"))

    def test_distances_from_to(self):
        agdp = NumpyAGDP(source="s")
        agdp.step("a", [("s", "a", 2.0), ("a", "s", 3.0)])
        assert agdp.distances_from("s") == {"s": 0.0, "a": 2.0}
        assert agdp.distances_to("s") == {"s": 0.0, "a": 3.0}

    def test_gc_disabled_retains_dead(self):
        agdp = NumpyAGDP(source="s", gc_enabled=False)
        agdp.step("a", [("s", "a", 1.0)])
        agdp.step("b", [("a", "b", 1.0)], kills=["a"])
        assert "a" in agdp
        assert agdp.live_nodes == {"s", "b"}
        assert agdp.distance("s", "a") == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(agdp_scripts())
def test_numpy_matches_dict_backend(steps):
    dict_agdp = AGDP(source="s")
    np_agdp = NumpyAGDP(source="s")
    live = {"s"}
    for node, edges, kills in steps:
        dict_agdp.step(node, edges, kills)
        np_agdp.step(node, edges, kills)
        live.add(node)
        live -= set(kills)
        for x in live:
            for y in live:
                a = dict_agdp.distance(x, y)
                b = np_agdp.distance(x, y)
                if math.isinf(a):
                    assert math.isinf(b)
                else:
                    assert b == pytest.approx(a, abs=1e-9)


@st.composite
def heavy_churn_scripts(draw):
    """Kill-heavy / growth-heavy scripts stressing the compacted-slot layout.

    Unlike :func:`agdp_scripts` these run long enough to force capacity
    doubling past the initial 16 slots ("grow" flavour) and enough
    interleaved kills that nearly every step compacts via a swap-with-last
    ("churn" flavour).  Weights stay potential-based (feasible).
    """
    n_steps = draw(st.integers(min_value=20, max_value=40))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    flavour = draw(st.sampled_from(["grow", "churn"]))
    kill_prob = 0.15 if flavour == "grow" else 0.85
    potentials = {"s": 0.0}
    live = ["s"]
    steps = []
    for i in range(n_steps):
        node = f"n{i}"
        potentials[node] = rng.uniform(-5, 5)
        degree = rng.randint(1, min(4, len(live)))
        edges = []
        for peer in rng.sample(live, degree):
            for x, y in ((node, peer), (peer, node)):
                if rng.random() < 0.9:
                    slack = rng.uniform(0, 2)
                    edges.append((x, y, potentials[y] - potentials[x] + slack))
        kills = []
        killable = [p for p in live if p != "s"]
        rng.shuffle(killable)
        while killable and rng.random() < kill_prob:
            kills.append(killable.pop())
            if len(kills) >= 2:
                break
        steps.append((node, edges, kills))
        live = [p for p in live if p not in kills] + [node]
    return steps


@settings(max_examples=25, deadline=None)
@given(heavy_churn_scripts())
def test_numpy_survives_heavy_slot_churn(steps):
    """Distance-map equivalence under interleaved add/kill/grow sequences.

    Every kill on the compacted backend swaps the last occupied slot into
    the hole; every growth reallocates the prefix.  Neither may perturb a
    single surviving distance relative to the dict backend.
    """
    dict_agdp = AGDP(source="s")
    np_agdp = NumpyAGDP(source="s")
    live = {"s"}
    for node, edges, kills in steps:
        dict_agdp.step(node, edges, kills)
        np_agdp.step(node, edges, kills)
        live.add(node)
        live -= set(kills)
        assert np_agdp.nodes == dict_agdp.nodes == live
        for x in live:
            from_dict = dict_agdp.distances_from(x)
            from_np = np_agdp.distances_from(x)
            assert from_np.keys() == from_dict.keys()
            for y, a in from_dict.items():
                b = from_np[y]
                if math.isinf(a):
                    assert math.isinf(b)
                else:
                    assert b == pytest.approx(a, abs=1e-9)


def test_compaction_swap_preserves_self_distances():
    """Killing an interior slot swaps the last row/column in; the moved
    node's self-distance must land back on the diagonal."""
    agdp = NumpyAGDP(source="s")
    for name, w in (("a", 1.0), ("b", 2.0), ("c", 3.0)):
        agdp.step(name, [("s", name, w), (name, "s", -w + 0.5)])
    agdp.kill("a")  # interior slot: c (last) swaps into a's slot
    assert agdp.nodes == {"s", "b", "c"}
    for node in ("s", "b", "c"):
        assert agdp.distance(node, node) == 0.0
    assert agdp.distance("s", "c") == pytest.approx(3.0)
    assert agdp.distance("c", "s") == pytest.approx(-2.5)


@settings(max_examples=60, deadline=None)
@given(agdp_scripts())
def test_stats_parity_across_backends(steps):
    """Both backends report identical work/size counters - including
    ``pair_updates``, which must mean the same quantity (finite relaxation
    candidates) regardless of backend so complexity plots line up."""
    dict_agdp = AGDP(source="s")
    np_agdp = NumpyAGDP(source="s")
    for node, edges, kills in steps:
        dict_agdp.step(node, edges, kills)
        np_agdp.step(node, edges, kills)
    for field in (
        "nodes_added",
        "nodes_killed",
        "edges_inserted",
        "pair_updates",
        "max_nodes",
    ):
        assert getattr(np_agdp.stats, field) == getattr(dict_agdp.stats, field), field


class TestSourceOnlyMode:
    @settings(max_examples=60, deadline=None)
    @given(agdp_scripts())
    def test_anchor_distances_match_dict(self, steps):
        dict_agdp = AGDP(source="s")
        so = NumpyAGDP(source="s", source_only=True)
        live = {"s"}
        for node, edges, kills in steps:
            dict_agdp.step(node, edges, kills)
            so.step(node, edges, kills)
            live.add(node)
            live -= set(kills)
            assert so.nodes == dict_agdp.nodes
            for x in live:
                for a, b in (
                    (dict_agdp.distance("s", x), so.distance("s", x)),
                    (dict_agdp.distance(x, "s"), so.distance(x, "s")),
                ):
                    if math.isinf(a):
                        assert math.isinf(b)
                    else:
                        assert b == pytest.approx(a, abs=1e-9)

    def test_paths_through_dead_nodes_survive(self):
        """Lemma 3.4: killing a relay must not lose the distances it routed."""
        so = NumpyAGDP(source="s", source_only=True)
        dict_agdp = AGDP(source="s")
        for agdp in (so, dict_agdp):
            agdp.step("a", [("s", "a", 1.0), ("a", "s", 1.0)])
            agdp.step("b", [("a", "b", 2.0), ("b", "a", 2.0)], kills=["a"])
            agdp.step("c", [("b", "c", 4.0)])
        assert so.distance("s", "c") == pytest.approx(dict_agdp.distance("s", "c"))
        assert so.distance("s", "c") == pytest.approx(7.0)

    def test_re_anchoring(self):
        so = NumpyAGDP(source="s", source_only=True)
        dict_agdp = AGDP(source="s")
        for agdp in (so, dict_agdp):
            agdp.step("a", [("s", "a", 1.0), ("a", "s", 1.5)])
            agdp.step("b", [("a", "b", 2.0), ("b", "a", 2.5)])
        assert so.anchor == "s"
        so.set_anchor("b")
        assert so.anchor == "b"
        for x in ("s", "a", "b"):
            assert so.distance("b", x) == pytest.approx(dict_agdp.distance("b", x))
            assert so.distance(x, "b") == pytest.approx(dict_agdp.distance(x, "b"))

    def test_query_surface_errors(self):
        so = NumpyAGDP(source="s", source_only=True)
        so.step("a", [("s", "a", 1.0)])
        so.step("b", [("a", "b", 1.0)])
        # anchor-incident pairs and x == y answer; anything else refuses
        assert so.distance("s", "b") == pytest.approx(2.0)
        assert so.distance("a", "a") == 0.0
        with pytest.raises(ValueError):
            so.distance("a", "b")
        with pytest.raises(KeyError):
            so.distance("s", "ghost")
        with pytest.raises(ValueError):
            so.distances_from("a")
        with pytest.raises(KeyError):
            so.distances_to("ghost")
        with pytest.raises(KeyError):
            so.set_anchor("ghost")
        dense = NumpyAGDP(source="s")
        with pytest.raises(ValueError):
            dense.set_anchor("s")
        assert dense.anchor is None

    def test_negative_cycle_through_anchor_rejected(self):
        so = NumpyAGDP(source="s", source_only=True)
        so.step("a", [("s", "a", 1.0), ("a", "s", 1.0)])
        with pytest.raises(InconsistentSpecificationError):
            so.insert_edge("a", "s", -2.0)

    def test_negative_cycle_off_anchor_detected_by_budget(self):
        """A negative cycle not incident to the anchor is still caught -
        by the relaxation budget, after the adjacency mutated (the reason
        degraded mode cannot use this backend)."""
        so = NumpyAGDP(source="s", source_only=True)
        so.step("a", [("s", "a", 1.0)])
        so.step("b", [("a", "b", 1.0)])
        with pytest.raises(InconsistentSpecificationError):
            so.insert_edge("b", "a", -2.0)

    def test_space_accounting(self):
        so = NumpyAGDP(source="s", source_only=True)
        so.step("a", [("s", "a", 1.0), ("a", "s", 1.0)])
        assert so.matrix_size() == 2 * 2  # two vectors over {s, a}
        assert so.edge_space() == 4  # two directed edges, in+out lists
        dense = NumpyAGDP(source="s")
        assert dense.edge_space() == 0


class TestBackendInCSA:
    def test_estimates_identical_across_backends(self):
        names, links = topologies.ring(5)
        network = standard_network(names, links, seed=21, drift_ppm=300)
        result = run_workload(
            network,
            RandomTraffic(rate=3.0, seed=21),
            {
                "dict": lambda p, s: EfficientCSA(p, s, agdp_backend="dict"),
                "numpy": lambda p, s: EfficientCSA(p, s, agdp_backend="numpy"),
                "source-only": lambda p, s: EfficientCSA(
                    p, s, agdp_backend="numpy-source-only"
                ),
            },
            duration=40.0,
            seed=21,
            sample_period=5.0,
        )
        assert result.soundness_violations() == []
        for proc in names:
            a = result.sim.estimator(proc, "dict").estimate()
            for other in ("numpy", "source-only"):
                b = result.sim.estimator(proc, other).estimate()
                if not (a.is_bounded and b.is_bounded):
                    assert a.lower == b.lower and a.upper == b.upper
                    continue
                assert b.lower == pytest.approx(a.lower, abs=1e-9)
                assert b.upper == pytest.approx(a.upper, abs=1e-9)

    def test_unknown_backend_rejected(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        with pytest.raises(ValueError):
            EfficientCSA("p1", network.spec, agdp_backend="fortran")

    def test_source_only_rejects_degraded_and_hardened(self):
        """No pre-mutation inconsistency detection => no quarantine modes."""
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        with pytest.raises(ValueError):
            EfficientCSA(
                "p1",
                network.spec,
                agdp_backend="numpy-source-only",
                degraded_mode=True,
            )
        with pytest.raises(ValueError):
            EfficientCSA(
                "p1",
                network.spec,
                agdp_backend="numpy-source-only",
                suspicion=SuspicionPolicy(),
            )
