"""GeneralSynchronizer vs the scipy LP oracle on random constraint systems.

The general model's promise: for *any* set of asserted range constraints,
the returned intervals are the exact feasibility bounds.  We generate
random feasible difference-constraint systems (hidden potentials plus
slack), feed them to :class:`GeneralSynchronizer`, and check every pair's
interval against ``scipy.optimize.linprog``.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.core import GeneralSynchronizer


def lp_max_difference(n, constraints, p, q):
    """max RT(p) - RT(q) subject to RT range constraints (integer-indexed
    variables); None if unbounded."""
    rows, rhs = [], []
    for (a, b), (lower, upper) in constraints.items():
        row = [0.0] * n
        row[a] = 1.0
        row[b] = -1.0
        rows.append(list(row))
        rhs.append(upper)
        rows.append([-v for v in row])
        rhs.append(-lower)
    c = [0.0] * n
    c[p] = -1.0
    c[q] = 1.0
    result = linprog(
        c,
        A_ub=np.array(rows),
        b_ub=np.array(rhs),
        bounds=[(None, None)] * n,
        method="highs",
    )
    if result.status == 3:
        return None
    assert result.status == 0, result.message
    return -result.fun


@st.composite
def constraint_systems(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    rng = random.Random(draw(st.integers(min_value=0, max_value=99_999)))
    potentials = [rng.uniform(-20, 20) for _ in range(n)]
    n_constraints = draw(st.integers(min_value=1, max_value=2 * n))
    constraints = {}
    for _ in range(n_constraints):
        a, b = rng.sample(range(n), 2)
        true_diff = potentials[a] - potentials[b]
        slack_lo = rng.uniform(0.001, 3.0)
        slack_hi = rng.uniform(0.001, 3.0)
        key = (a, b)
        window = (true_diff - slack_lo, true_diff + slack_hi)
        if key in constraints:
            old = constraints[key]
            window = (max(old[0], window[0]), min(old[1], window[1]))
        constraints[key] = window
    return n, constraints


@settings(max_examples=40, deadline=None)
@given(constraint_systems())
def test_general_synchronizer_matches_lp(system):
    n, constraints = system
    sync = GeneralSynchronizer(source="unused-source")
    points = [sync.add_point(f"t{i}", lt=0.0) for i in range(n)]
    for (a, b), (lower, upper) in constraints.items():
        sync.assert_range(points[a], points[b], lower, upper)
    assert sync.consistent()  # built around feasible potentials
    for a in range(n):
        for b in range(n):
            if a == b:
                continue
            bound = sync.relative_bounds(points[a], points[b])
            lp_upper = lp_max_difference(n, constraints, a, b)
            if lp_upper is None:
                assert math.isinf(bound.upper)
            else:
                assert bound.upper == pytest.approx(lp_upper, abs=1e-6)
