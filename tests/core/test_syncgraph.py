"""Tests for synchronization-graph construction (Definition 2.1)."""

import math

import pytest

from repro.core import (
    DriftSpec,
    EventId,
    ExplicitBoundsMapping,
    SystemSpec,
    TransitSpec,
    View,
    build_sync_graph,
    drift_edge_weights,
    incident_sync_edges,
    sync_graph_from_bounds,
    transit_edge_weights,
)

from ..conftest import make_event, ping_pong_view, recv, send, two_proc_spec


class TestDriftEdges:
    def test_weights_formula(self):
        spec = two_proc_spec(drift_ppm=100)
        earlier = make_event("a", 0, 10.0)
        later = make_event("a", 1, 20.0)
        w_back, w_fwd = drift_edge_weights(spec, earlier, later)
        # delta = 10; (beta-1)*10 = 1e-3, (1-alpha)*10 = 1e-3
        assert w_back == pytest.approx(1e-3)
        assert w_fwd == pytest.approx(1e-3)

    def test_source_zero_weights(self):
        spec = two_proc_spec()
        earlier = make_event("src", 0, 1.0)
        later = make_event("src", 1, 9.0)
        assert drift_edge_weights(spec, earlier, later) == (0.0, 0.0)

    def test_cross_processor_rejected(self):
        spec = two_proc_spec()
        with pytest.raises(ValueError):
            drift_edge_weights(spec, make_event("a", 0, 1.0), make_event("src", 0, 2.0))

    def test_wrong_order_rejected(self):
        spec = two_proc_spec()
        with pytest.raises(ValueError):
            drift_edge_weights(spec, make_event("a", 1, 5.0), make_event("a", 0, 1.0))


class TestTransitEdges:
    def test_weights_formula(self):
        spec = two_proc_spec(transit=(0.2, 1.0))
        s = send("src", 0, 10.0, dest="a")
        r = recv("a", 0, 10.6, s)
        w_r_to_s, w_s_to_r = transit_edge_weights(spec, s, r)
        observed = 0.6
        assert w_r_to_s == pytest.approx(1.0 - observed)
        assert w_s_to_r == pytest.approx(observed - 0.2)

    def test_unbounded_upper_gives_inf(self):
        spec = two_proc_spec(transit=(0.0, math.inf))
        s = send("src", 0, 10.0, dest="a")
        r = recv("a", 0, 12.0, s)
        w_r_to_s, w_s_to_r = transit_edge_weights(spec, s, r)
        assert math.isinf(w_r_to_s)
        assert w_s_to_r == pytest.approx(2.0)


class TestBuildGraph:
    def test_ping_pong_structure(self):
        view, spec = ping_pong_view()
        graph = build_sync_graph(view, spec)
        assert len(graph) == 4
        # drift edges both ways at both processors + 2 transit pairs
        assert graph.edge_count() == 8

    def test_incident_edges_filter_infinite(self):
        spec = two_proc_spec(transit=(0.1, math.inf))
        view = View()
        s = send("src", 0, 10.0, dest="a")
        view.add(s)
        r = recv("a", 0, 12.0, s)
        view.add(r)
        edges = incident_sync_edges(spec, view, r)
        # only the finite send->receive edge, no pred at a
        assert len(edges) == 1
        (u, v, w), = edges
        assert (u, v) == (s.eid, r.eid)
        assert w == pytest.approx(1.9)

    def test_graph_has_no_negative_cycles_for_consistent_view(self, line4_run):
        from repro.core import floyd_warshall

        view = line4_run.trace.global_view()
        graph = build_sync_graph(view, line4_run.sim.spec)
        apsp = floyd_warshall(graph)  # raises on negative cycle
        for node in graph.nodes:
            assert apsp[node][node] >= -1e-9


class TestExplicitBounds:
    def test_set_range_and_bound(self):
        p, q = EventId("x", 0), EventId("y", 0)
        bounds = ExplicitBoundsMapping()
        bounds.set_range(p, q, -1.0, 2.0)
        assert bounds.bound(p, q) == 2.0
        assert bounds.bound(q, p) == 1.0
        assert math.isinf(bounds.bound(p, EventId("z", 0)))

    def test_tightest_bound_kept(self):
        p, q = EventId("x", 0), EventId("y", 0)
        bounds = ExplicitBoundsMapping()
        bounds.set(p, q, 5.0)
        bounds.set(p, q, 3.0)
        bounds.set(p, q, 10.0)
        assert bounds.bound(p, q) == 3.0

    def test_nan_rejected(self):
        bounds = ExplicitBoundsMapping()
        with pytest.raises(ValueError):
            bounds.set(EventId("x", 0), EventId("y", 0), math.nan)

    def test_graph_from_bounds_weights(self):
        view = View()
        view.add(make_event("x", 0, 10.0))
        view.add(make_event("y", 0, 4.0))
        p, q = EventId("x", 0), EventId("y", 0)
        bounds = ExplicitBoundsMapping({(p, q): 8.0})
        graph = sync_graph_from_bounds(view, bounds)
        # w(p,q) = B(p,q) - (LT(p)-LT(q)) = 8 - 6 = 2
        assert graph.weight(p, q) == pytest.approx(2.0)
        assert graph.weight(q, p) == math.inf

    def test_top_bounds_ignored(self):
        view = View()
        view.add(make_event("x", 0, 1.0))
        view.add(make_event("y", 0, 2.0))
        bounds = ExplicitBoundsMapping()
        bounds.set(EventId("x", 0), EventId("y", 0), math.inf)
        graph = sync_graph_from_bounds(view, bounds)
        assert graph.edge_count() == 0
