"""Tests for the shortest-path engine, with networkx as oracle."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InconsistentSpecificationError,
    WeightedDigraph,
    bellman_ford_from,
    bellman_ford_to,
    floyd_warshall,
)


def simple_graph():
    g = WeightedDigraph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", -0.5)
    g.add_edge("a", "c", 2.0)
    g.add_edge("c", "a", 0.25)
    return g


class TestWeightedDigraph:
    def test_parallel_edges_keep_min(self):
        g = WeightedDigraph()
        g.add_edge("a", "b", 2.0)
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "b", 3.0)
        assert g.weight("a", "b") == 1.0
        assert g.edge_count() == 1

    def test_infinite_weight_dropped_but_nodes_added(self):
        g = WeightedDigraph()
        g.add_edge("a", "b", math.inf)
        assert "a" in g and "b" in g
        assert g.edge_count() == 0

    def test_nan_rejected(self):
        g = WeightedDigraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", math.nan)

    def test_missing_edge_is_inf(self):
        assert WeightedDigraph().weight("x", "y") == math.inf

    def test_remove_node(self):
        g = simple_graph()
        g.remove_node("b")
        assert "b" not in g
        assert g.weight("a", "b") == math.inf
        assert g.weight("a", "c") == 2.0

    def test_reversed(self):
        g = simple_graph()
        r = g.reversed()
        assert r.weight("b", "a") == 1.0
        assert r.weight("a", "c") == 0.25

    def test_copy_independent(self):
        g = simple_graph()
        c = g.copy()
        c.add_edge("x", "y", 1.0)
        assert "x" not in g

    def test_total_absolute_weight(self):
        assert simple_graph().total_absolute_weight() == pytest.approx(3.75)

    def test_successors_predecessors(self):
        g = simple_graph()
        assert g.successors("a") == {"b": 1.0, "c": 2.0}
        assert g.predecessors("c") == {"b": -0.5, "a": 2.0}


class TestBellmanFord:
    def test_simple_distances(self):
        g = simple_graph()
        dist = bellman_ford_from(g, "a")
        assert dist["a"] == 0.0
        assert dist["b"] == 1.0
        assert dist["c"] == 0.5  # a->b->c beats a->c

    def test_distances_to(self):
        g = simple_graph()
        dist = bellman_ford_to(g, "a")
        assert dist["c"] == 0.25
        assert dist["b"] == pytest.approx(-0.25)  # b->c->a

    def test_unreachable_absent(self):
        g = WeightedDigraph()
        g.add_edge("a", "b", 1.0)
        g.add_node("z")
        dist = bellman_ford_from(g, "a")
        assert "z" not in dist

    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            bellman_ford_from(WeightedDigraph(), "ghost")

    def test_negative_cycle_detected(self):
        g = WeightedDigraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", -2.0)
        g.add_edge("c", "a", 0.5)
        with pytest.raises(InconsistentSpecificationError):
            bellman_ford_from(g, "a")

    def test_zero_cycle_ok(self):
        g = WeightedDigraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", -1.0)
        dist = bellman_ford_from(g, "a")
        assert dist["b"] == 1.0

    def test_self_negative_loop(self):
        g = WeightedDigraph()
        g.add_edge("a", "a", -1.0)
        with pytest.raises(InconsistentSpecificationError):
            bellman_ford_from(g, "a")


class TestFloydWarshall:
    def test_matches_bellman_ford(self):
        g = simple_graph()
        apsp = floyd_warshall(g)
        for node in g.nodes:
            sssp = bellman_ford_from(g, node)
            for other in g.nodes:
                expected = sssp.get(other, math.inf)
                assert apsp[node][other] == pytest.approx(expected)

    def test_negative_cycle_detected(self):
        g = WeightedDigraph()
        g.add_edge("a", "b", -1.0)
        g.add_edge("b", "a", 0.5)
        with pytest.raises(InconsistentSpecificationError):
            floyd_warshall(g)


# ---- randomized oracle comparison against networkx -------------------------------

def random_safe_digraph(draw):
    """Random digraph with node potentials -> no negative cycles."""
    n = draw(st.integers(min_value=2, max_value=8))
    potentials = [
        draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
        for _ in range(n)
    ]
    edges = []
    n_edges = draw(st.integers(min_value=1, max_value=n * (n - 1)))
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        # strictly positive slack: exact-zero cycles round to ~-1e-16 in
        # floats, which oracles flag as negative cycles
        slack = draw(st.floats(min_value=1e-6, max_value=5, allow_nan=False))
        edges.append((u, v, potentials[v] - potentials[u] + slack))
    return n, edges


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_bellman_ford_matches_networkx(data):
    n, edges = random_safe_digraph(data.draw)
    ours = WeightedDigraph()
    theirs = nx.DiGraph()
    for i in range(n):
        ours.add_node(i)
        theirs.add_node(i)
    for u, v, w in edges:
        ours.add_edge(u, v, w)
        if theirs.has_edge(u, v):
            theirs[u][v]["weight"] = min(theirs[u][v]["weight"], w)
        else:
            theirs.add_edge(u, v, weight=w)
    dist_ours = bellman_ford_from(ours, 0)
    dist_nx = nx.single_source_bellman_ford_path_length(theirs, 0)
    assert set(dist_ours) == set(dist_nx)
    for node, value in dist_nx.items():
        assert dist_ours[node] == pytest.approx(value, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_floyd_warshall_matches_networkx(data):
    n, edges = random_safe_digraph(data.draw)
    ours = WeightedDigraph()
    theirs = nx.DiGraph()
    for i in range(n):
        ours.add_node(i)
        theirs.add_node(i)
    for u, v, w in edges:
        ours.add_edge(u, v, w)
        if theirs.has_edge(u, v):
            theirs[u][v]["weight"] = min(theirs[u][v]["weight"], w)
        else:
            theirs.add_edge(u, v, weight=w)
    apsp_ours = floyd_warshall(ours)
    apsp_nx = dict(nx.all_pairs_bellman_ford_path_length(theirs))
    for u in range(n):
        for v, value in apsp_nx.get(u, {}).items():
            assert apsp_ours[u][v] == pytest.approx(value, abs=1e-9)
