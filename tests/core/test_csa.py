"""Tests for the efficient CSA (Sec 3) and the full-information reference.

The keystone assertions: on identical executions the two algorithms emit
*identical* intervals (at every shared point), both are sound, and the
efficient one's state stays bounded.
"""

import math

import pytest

from repro.core import (
    ClockBound,
    EfficientCSA,
    EventId,
    FullInformationCSA,
    ProtocolError,
    View,
)
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip, RandomTraffic

from ..conftest import make_event, recv, send, two_proc_spec


class TestHandDrivenScript:
    """Drive two CSAs by hand through a round trip and check the numbers."""

    def setup_method(self):
        self.spec = two_proc_spec(transit=(0.2, 1.0))
        self.src = EfficientCSA("src", self.spec)
        self.a = EfficientCSA("a", self.spec)

    def test_round_trip_bounds(self):
        s1 = send("src", 0, 10.0, dest="a")
        payload1 = self.src.on_send(s1)
        r1 = recv("a", 0, 13.5, s1)
        self.a.on_receive(r1, payload1)
        # after one hop: source time at r1 in [10+0.2, 10+1.0]
        bound = self.a.estimate()
        assert bound.lower == pytest.approx(10.2)
        assert bound.upper == pytest.approx(11.0)

        s2 = send("a", 1, 14.0, dest="src")
        payload2 = self.a.on_send(s2)
        r2 = recv("src", 1, 11.5, s2)
        self.src.on_receive(r2, payload2)
        # the source knows real time exactly
        src_bound = self.src.estimate()
        assert src_bound.lower == pytest.approx(11.5)
        assert src_bound.upper == pytest.approx(11.5)

    def test_estimate_before_any_info_unbounded(self):
        assert not self.a.estimate().is_bounded

    def test_on_send_with_receive_event_rejected(self):
        s1 = send("src", 0, 10.0, dest="a")
        self.src.on_send(s1)
        r1 = recv("a", 0, 13.5, s1)
        with pytest.raises(ProtocolError):
            self.a.on_send(r1)

    def test_on_receive_with_wrong_payload_type(self):
        s1 = send("src", 0, 10.0, dest="a")
        self.src.on_send(s1)
        r1 = recv("a", 0, 13.5, s1)
        with pytest.raises(TypeError):
            self.a.on_receive(r1, "not a payload")

    def test_estimate_now_advances_with_drift(self):
        s1 = send("src", 0, 10.0, dest="a")
        payload1 = self.src.on_send(s1)
        r1 = recv("a", 0, 13.5, s1)
        self.a.on_receive(r1, payload1)
        base = self.a.estimate()
        later = self.a.estimate_now(13.5 + 100.0)
        drift = self.spec.drift_of("a")
        assert later.lower == pytest.approx(base.lower + drift.alpha * 100)
        assert later.upper == pytest.approx(base.upper + drift.beta * 100)

    def test_estimate_now_backwards_rejected(self):
        s1 = send("src", 0, 10.0, dest="a")
        self.src.on_send(s1)
        with pytest.raises(ValueError):
            self.src.estimate_now(9.0)

    def test_internal_event_processed(self):
        self.a.on_internal(make_event("a", 0, 1.0))
        assert self.a.live.live_count() == 1


class TestEquivalenceWithFullInformation:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_every_processor_final_estimate_matches(self, seed):
        names, links = topologies.random_connected(6, 2, seed)
        network = standard_network(names, links, seed=seed, drift_ppm=300)
        result = run_workload(
            network,
            RandomTraffic(rate=3.0, seed=seed, internal_prob=0.1),
            {
                "efficient": lambda p, s: EfficientCSA(p, s),
                "full": lambda p, s: FullInformationCSA(p, s),
            },
            duration=40.0,
            seed=seed,
        )
        for proc in names:
            e = result.sim.estimator(proc, "efficient").estimate()
            f = result.sim.estimator(proc, "full").estimate()
            if not e.is_bounded or not f.is_bounded:
                assert e.lower == f.lower and e.upper == f.upper
                continue
            assert e.lower == pytest.approx(f.lower, abs=1e-7)
            assert e.upper == pytest.approx(f.upper, abs=1e-7)

    def test_estimates_match_at_every_sample(self, line4_run):
        """Sampled mid-run, the two algorithms never disagree."""
        by_key = {}
        for sample in line4_run.samples:
            by_key.setdefault((sample.rt, sample.proc), {})[sample.channel] = sample
        compared = 0
        for grouped in by_key.values():
            if "efficient" not in grouped or "full" not in grouped:
                continue
            e, f = grouped["efficient"].bound, grouped["full"].bound
            if e.is_bounded and f.is_bounded:
                assert e.lower == pytest.approx(f.lower, abs=1e-7)
                assert e.upper == pytest.approx(f.upper, abs=1e-7)
                compared += 1
        assert compared > 10

    def test_estimate_of_peers(self, line4_run):
        """estimate_of bounds every peer's last known point soundly."""
        trace = line4_run.trace
        estimator = line4_run.sim.estimator("p3", "efficient")
        for proc in line4_run.sim.network.processors:
            last = estimator.live.last_event(proc)
            if last is None:
                continue
            bound = estimator.estimate_of(proc)
            truth = trace.rt_of(last[0])
            assert bound.contains(truth, tolerance=1e-6)


class TestSoundness:
    def test_all_samples_sound(self, ring5_random_run):
        assert ring5_random_run.soundness_violations() == []

    def test_source_always_exact(self, line4_run):
        for sample in line4_run.samples_for("efficient", proc="p0"):
            assert sample.width == pytest.approx(0.0, abs=1e-9)


class TestBoundedState:
    def test_agdp_stays_small(self, line4_run):
        for proc in line4_run.sim.network.processors:
            stats = line4_run.sim.estimator(proc, "efficient").stats()
            # 4-line gossip: a handful of live points, never the whole trace
            assert stats.max_agdp_nodes < 30
            assert stats.max_live_points < 25
            assert stats.events_observed > 50

    def test_full_information_view_grows(self, line4_run):
        full = line4_run.sim.estimator("p3", "full")
        efficient = line4_run.sim.estimator("p3", "efficient")
        assert full.max_view_events > 4 * efficient.stats().max_agdp_nodes

    def test_stats_space_proxy(self, line4_run):
        stats = line4_run.sim.estimator("p2", "efficient").stats()
        assert stats.space_proxy() == (
            stats.max_agdp_nodes**2 + stats.max_history_buffer
        )


class TestLossHandling:
    def make_lossy_run(self, detection_delay):
        names, links = topologies.ring(4)
        network = standard_network(names, links, seed=5, loss_prob=0.3)
        return run_workload(
            network,
            PeriodicGossip(period=4.0, seed=5),
            {"efficient": lambda p, s: EfficientCSA(p, s, reliable=False)},
            duration=60.0,
            seed=5,
            sample_period=10.0,
            loss_detection_delay=detection_delay,
        )

    def test_sound_under_loss(self):
        result = self.make_lossy_run(2.0)
        assert result.sim.messages_lost > 0
        assert result.soundness_violations() == []

    def test_detection_prunes_live_points(self):
        with_detection = self.make_lossy_run(2.0)
        without = self.make_lossy_run(math.inf)
        live_with = max(
            with_detection.sim.estimator(p, "efficient").live.max_live
            for p in with_detection.sim.network.processors
        )
        live_without = max(
            without.sim.estimator(p, "efficient").live.max_live
            for p in without.sim.network.processors
        )
        assert live_with < live_without

    def test_loss_flag_direct(self):
        """Flag a send by hand; its AGDP node must disappear everywhere it
        was known and dead."""
        spec = two_proc_spec()
        src = EfficientCSA("src", spec, reliable=False)
        s1 = send("src", 0, 10.0, dest="a")
        src.on_send(s1)
        s2 = send("src", 1, 11.0, dest="a")
        src.on_send(s2)
        assert s1.eid in src.agdp
        src.on_loss_detected(s1.eid)
        assert s1.eid not in src.agdp
        # and the flag is queued for dissemination
        assert s1.eid in src.history.loss_flags
