"""Unit and property tests for real-time specifications."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DriftSpec,
    SpecificationError,
    SystemSpec,
    TOP,
    TransitSpec,
    link_id,
)


class TestDriftSpec:
    def test_paper_example_100ppm(self):
        """The paper's Sec 2 example: 100 ppm, 10^6 local units."""
        spec = DriftSpec.from_ppm(100)
        low, high = spec.elapsed_real_bounds(1e6)
        assert low == pytest.approx(999900.0)
        assert high == pytest.approx(1000100.0)

    def test_50ppm_workstation(self):
        spec = DriftSpec.from_ppm(50)
        assert spec.alpha == pytest.approx(0.99995)
        assert spec.beta == pytest.approx(1.00005)

    def test_perfect(self):
        spec = DriftSpec.perfect()
        assert spec.is_drift_free
        assert spec.elapsed_real_bounds(5.0) == (5.0, 5.0)
        assert spec.max_deviation == 0.0

    def test_from_rate_bounds(self):
        spec = DriftSpec.from_rate_bounds(0.5, 2.0)
        assert spec.alpha == pytest.approx(0.5)
        assert spec.beta == pytest.approx(2.0)

    def test_invalid_alpha_beta(self):
        with pytest.raises(SpecificationError):
            DriftSpec(0.0, 1.0)
        with pytest.raises(SpecificationError):
            DriftSpec(1.2, 1.1)
        with pytest.raises(SpecificationError):
            DriftSpec(1.0, math.inf)

    def test_negative_ppm_rejected(self):
        with pytest.raises(SpecificationError):
            DriftSpec.from_ppm(-1)

    def test_huge_ppm_rejected(self):
        with pytest.raises(SpecificationError):
            DriftSpec.from_ppm(1_000_001)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(SpecificationError):
            DriftSpec.perfect().elapsed_real_bounds(-1.0)

    @given(st.floats(min_value=0, max_value=1e5), st.floats(min_value=0, max_value=1e6))
    def test_bounds_ordered(self, ppm, delta):
        spec = DriftSpec.from_ppm(min(ppm, 999_999))
        low, high = spec.elapsed_real_bounds(delta)
        assert low <= delta <= high

    @given(
        st.floats(min_value=0.1, max_value=10),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_rate_bounds_roundtrip(self, a, b):
        r_min, r_max = min(a, b), max(a, b)
        spec = DriftSpec.from_rate_bounds(r_min, r_max)
        # a clock at either extreme rate must satisfy the spec
        for rate in (r_min, r_max):
            elapsed_rt = 7.3
            elapsed_lt = rate * elapsed_rt
            low, high = spec.elapsed_real_bounds(elapsed_lt)
            assert low <= elapsed_rt * (1 + 1e-12) and elapsed_rt <= high * (1 + 1e-12)


class TestTransitSpec:
    def test_unbounded(self):
        spec = TransitSpec.unbounded()
        assert spec.lower == 0.0
        assert math.isinf(spec.upper)
        assert not spec.is_bounded

    def test_exactly(self):
        spec = TransitSpec.exactly(0.3)
        assert spec.lower == spec.upper == 0.3
        assert spec.slack == 0.0

    def test_invalid_bounds(self):
        with pytest.raises(SpecificationError):
            TransitSpec(-1.0, 2.0)
        with pytest.raises(SpecificationError):
            TransitSpec(3.0, 2.0)
        with pytest.raises(SpecificationError):
            TransitSpec(math.inf, math.inf)

    def test_slack(self):
        assert TransitSpec(0.1, 0.5).slack == pytest.approx(0.4)


class TestSystemSpec:
    def make(self):
        return SystemSpec.build(
            source="s",
            processors=["s", "a", "b", "c"],
            links=[("s", "a"), ("a", "b"), ("b", "c")],
            default_drift=DriftSpec.from_ppm(100),
            default_transit=TransitSpec(0.1, 0.5),
        )

    def test_source_drift_forced_perfect(self):
        spec = self.make()
        assert spec.drift_of("s").is_drift_free

    def test_drift_lookup(self):
        spec = self.make()
        assert spec.drift_of("a") == DriftSpec.from_ppm(100)
        with pytest.raises(SpecificationError):
            spec.drift_of("zzz")

    def test_transit_lookup_both_directions(self):
        spec = self.make()
        assert spec.transit_of("a", "b") == TransitSpec(0.1, 0.5)
        assert spec.transit_of("b", "a") == TransitSpec(0.1, 0.5)
        with pytest.raises(SpecificationError):
            spec.transit_of("a", "c")

    def test_asymmetric_transit(self):
        spec = SystemSpec(
            source="s",
            drift={"s": DriftSpec.perfect(), "a": DriftSpec.from_ppm(10)},
            transit={("s", "a"): {"s": TransitSpec(0.1, 0.2), "a": TransitSpec(0.3, 0.4)}},
        )
        assert spec.transit_of("s", "a") == TransitSpec(0.1, 0.2)
        assert spec.transit_of("a", "s") == TransitSpec(0.3, 0.4)

    def test_asymmetric_transit_bad_endpoint(self):
        with pytest.raises(SpecificationError):
            SystemSpec(
                source="s",
                drift={"s": DriftSpec.perfect()},
                transit={("s", "a"): {"zzz": TransitSpec(0.1, 0.2)}},
            )

    def test_neighbors(self):
        spec = self.make()
        assert spec.neighbors("a") == ("b", "s")
        assert spec.neighbors("c") == ("b",)

    def test_has_link(self):
        spec = self.make()
        assert spec.has_link("a", "s")
        assert not spec.has_link("s", "c")

    def test_diameter_line(self):
        assert self.make().diameter() == 3

    def test_diameter_disconnected_raises(self):
        spec = SystemSpec.build(
            source="s",
            processors=["s", "a", "b"],
            links=[("s", "a")],
        )
        with pytest.raises(SpecificationError):
            spec.diameter()

    def test_max_degree(self):
        assert self.make().max_degree() == 2

    def test_processors_sorted(self):
        assert self.make().processors == ("a", "b", "c", "s")
