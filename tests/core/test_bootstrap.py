"""Late-joiner bootstrap: snapshot handoff, at-most-once, strict codec.

The load-bearing claims (Lemmas 3.4/3.5 + Lemma 3.1): a sponsor's
snapshot taken right after the handshake send, adopted by a *fresh*
joiner before it processes the handshake receive, leaves the joiner with
exactly the estimate a full replay of the sponsor's causal past would
have produced - and adoption is refused for anything that is not fresh,
giving the runtime handshake its at-most-once semantics for free.
"""

import math

import pytest

from repro.core import EfficientCSA
from repro.core.bootstrap import BootstrapSnapshot
from repro.core.errors import ProtocolError
from repro.core.specs import DriftSpec, SystemSpec, TransitSpec

from ..conftest import recv, send


def line3_spec(*, drift_ppm: float = 0.0) -> SystemSpec:
    return SystemSpec.build(
        source="src",
        processors=["src", "a", "b"],
        links=[("src", "a"), ("a", "b")],
        default_drift=DriftSpec.from_ppm(drift_ppm),
        default_transit=TransitSpec(0.2, 1.0),
    )


def sponsor_with_history(spec):
    """A sponsor 'a' that has heard from the source once."""
    source = EfficientCSA("src", spec)
    sponsor = EfficientCSA("a", spec)
    s1 = send("src", 0, 10.0, dest="a")
    payload1 = source.on_send(s1)
    sponsor.on_receive(recv("a", 0, 13.5, s1), payload1)
    return source, sponsor


def handshake(spec, sponsor):
    """Sponsor's handshake send + post-send snapshot, per the protocol."""
    s2 = send("a", 1, 14.0, dest="b")
    payload2 = sponsor.on_send(s2)
    snapshot = sponsor.bootstrap_snapshot()  # after the send: covers it
    return s2, payload2, snapshot


class TestSnapshotHandoff:
    def setup_method(self):
        self.spec = line3_spec()
        self.source, self.sponsor = sponsor_with_history(self.spec)

    def test_fresh_joiner_adopts_and_first_estimate_is_bounded(self):
        s2, payload2, snapshot = handshake(self.spec, self.sponsor)
        joiner = EfficientCSA("b", self.spec)
        assert joiner.is_fresh
        assert joiner.bootstrap_from(snapshot)
        assert not joiner.is_fresh
        # adopted knowledge alone has no local anchor: still unbounded
        assert not joiner.estimate().is_bounded
        joiner.on_receive(recv("b", 0, 20.0, s2), payload2)
        bound = joiner.estimate()
        # sponsor's bound at s2 was [10.7, 11.5] (drift-free); one more
        # hop with transit [0.2, 1.0] widens it to [10.9, 12.5]
        assert bound.lower == pytest.approx(10.9)
        assert bound.upper == pytest.approx(12.5)

    def test_bootstrap_matches_full_replay_twin(self):
        """Lemma 3.1 operationally: snapshot + handshake == cold replay.

        The first payload to a never-seen neighbor re-reports everything,
        so a cold twin receiving the same handshake learns the same causal
        past; the snapshot must add nothing and lose nothing.
        """
        s2, payload2, snapshot = handshake(self.spec, self.sponsor)
        booted = EfficientCSA("b", self.spec)
        assert booted.bootstrap_from(snapshot)
        cold = EfficientCSA("b", self.spec)
        booted.on_receive(recv("b", 0, 20.0, s2), payload2)
        cold.on_receive(recv("b", 0, 20.0, s2), payload2)
        assert booted.estimate().lower == pytest.approx(cold.estimate().lower)
        assert booted.estimate().upper == pytest.approx(cold.estimate().upper)

    def test_adoption_is_at_most_once(self):
        _s2, _payload2, snapshot = handshake(self.spec, self.sponsor)
        joiner = EfficientCSA("b", self.spec)
        assert joiner.bootstrap_from(snapshot)
        assert not joiner.bootstrap_from(snapshot)  # no longer fresh

    def test_non_fresh_estimator_refuses(self):
        s2, payload2, snapshot = handshake(self.spec, self.sponsor)
        joiner = EfficientCSA("b", self.spec)
        joiner.on_receive(recv("b", 0, 20.0, s2), payload2)
        assert not joiner.is_fresh
        assert not joiner.bootstrap_from(snapshot)

    def test_inconsistent_distances_refused_wholesale(self):
        _s2, _payload2, snapshot = handshake(self.spec, self.sponsor)
        if not snapshot.distances:
            pytest.skip("snapshot carries no finite distances to poison")
        # flip one distance far negative: a negative cycle appears
        xp, xs, yp, ys, w = snapshot.distances[0]
        poisoned = BootstrapSnapshot(
            sponsor=snapshot.sponsor,
            last=snapshot.last,
            undelivered=snapshot.undelivered,
            known=snapshot.known,
            loss_flags=snapshot.loss_flags,
            distances=((xp, xs, yp, ys, -1e9),) + snapshot.distances[1:],
            source_rep=snapshot.source_rep,
        )
        joiner = EfficientCSA("b", self.spec)
        assert not joiner.bootstrap_from(poisoned)
        # the refusal resets to fresh: a good snapshot still adopts
        assert joiner.is_fresh
        assert joiner.bootstrap_from(snapshot)

    def test_source_only_backend_cannot_sponsor_or_boot(self):
        _s2, _payload2, snapshot = handshake(self.spec, self.sponsor)
        so = EfficientCSA("b", self.spec, agdp_backend="numpy-source-only")
        with pytest.raises(ProtocolError):
            so.bootstrap_snapshot()
        with pytest.raises(ProtocolError):
            so.bootstrap_from(snapshot)


class TestSnapshotCodec:
    def setup_method(self):
        spec = line3_spec()
        _source, sponsor = sponsor_with_history(spec)
        _s2, _payload2, self.snapshot = handshake(spec, sponsor)

    def test_round_trip(self):
        data = self.snapshot.to_dict()
        assert BootstrapSnapshot.from_dict(data) == self.snapshot

    def test_round_trip_through_json_types(self):
        import json

        data = json.loads(json.dumps(self.snapshot.to_dict()))
        assert BootstrapSnapshot.from_dict(data) == self.snapshot

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("sponsor"),
            lambda d: d.update(sponsor=7),
            lambda d: d.update(last="nope"),
            lambda d: d.update(distances=[[1, 2]]),
            lambda d: d.update(known={"src": "x"}),
            lambda d: d.update(loss_flags=[["src"]]),
        ],
        ids=["missing", "bad-sponsor", "bad-last", "bad-distance", "bad-known", "bad-flag"],
    )
    def test_strict_decode_rejects(self, mutate):
        data = self.snapshot.to_dict()
        mutate(data)
        with pytest.raises(ValueError):
            BootstrapSnapshot.from_dict(data)

    def test_decode_rejects_non_dict(self):
        with pytest.raises(ValueError):
            BootstrapSnapshot.from_dict([1, 2, 3])

    def test_frontier_and_live_points_are_consistent(self):
        frontier = self.snapshot.frontier()
        assert frontier  # a sponsor with history knows something
        for point in self.snapshot.live_points():
            assert frontier.get(point.proc, -1) >= point.seq
