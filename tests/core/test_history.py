"""Tests for the Figure 2 history propagation protocol (Lemmas 3.1-3.3)."""

import pytest

from repro.core import (
    EventId,
    HistoryModule,
    HistoryPayload,
    ProtocolError,
)

from ..conftest import make_event, recv, send


def wire(*modules):
    """Index modules by processor for terse two/three-party scripts."""
    return {m.proc: m for m in modules}


class TestLocalRecording:
    def test_record_local_wrong_processor(self):
        module = HistoryModule("a", ["b"])
        with pytest.raises(ProtocolError):
            module.record_local(make_event("b", 0, 1.0))

    def test_out_of_order_rejected(self):
        module = HistoryModule("a", ["b"])
        with pytest.raises(ProtocolError):
            module.record_local(make_event("a", 1, 1.0))

    def test_known_seq_advances(self):
        module = HistoryModule("a", ["b"])
        module.record_local(make_event("a", 0, 1.0))
        module.record_local(make_event("a", 1, 2.0))
        assert module.known_seq("a") == 1
        assert module.knows(EventId("a", 0))
        assert not module.knows(EventId("a", 2))

    def test_self_neighbor_rejected(self):
        with pytest.raises(ProtocolError):
            HistoryModule("a", ["a", "b"])

    def test_event_buffered_while_neighbor_lacks_it(self):
        module = HistoryModule("a", ["b"])
        module.record_local(make_event("a", 0, 1.0))
        assert module.buffer_size() == 1

    def test_no_neighbors_nothing_buffered(self):
        module = HistoryModule("a", [])
        module.record_local(make_event("a", 0, 1.0))
        assert module.buffer_size() == 0


class TestSendReceive:
    def test_payload_carries_send_event(self):
        a = HistoryModule("a", ["b"])
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        payload, _token = a.prepare_payload("b")
        assert s in payload.records

    def test_payload_order_is_learn_order(self):
        a = HistoryModule("a", ["b"])
        events = [make_event("a", i, float(i + 1)) for i in range(3)]
        for event in events:
            a.record_local(event)
        s = send("a", 3, 5.0, dest="b")
        a.record_local(s)
        payload, _token = a.prepare_payload("b")
        assert list(payload.records) == events + [s]

    def test_ingest_returns_only_new_events(self):
        a = HistoryModule("a", ["b"])
        b = HistoryModule("b", ["a"])
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        payload, _token = a.prepare_payload("b")
        new_events, flags = b.ingest_payload("a", payload)
        assert new_events == [s]
        assert flags == []
        # replaying the same payload yields nothing new
        new_again, _ = b.ingest_payload("a", payload)
        assert new_again == []
        assert b.stats.duplicate_records_received == 1

    def test_gap_in_payload_rejected(self):
        b = HistoryModule("b", ["a"])
        orphan = make_event("a", 5, 9.9)
        with pytest.raises(ProtocolError):
            b.ingest_payload("a", HistoryPayload(records=(orphan,)))

    def test_unknown_neighbor_rejected(self):
        a = HistoryModule("a", ["b"])
        with pytest.raises(ProtocolError):
            a.prepare_payload("zzz")
        with pytest.raises(ProtocolError):
            a.ingest_payload("zzz", HistoryPayload(records=()))

    def test_watermarks_advance_on_send_and_receive(self):
        a = HistoryModule("a", ["b"])
        b = HistoryModule("b", ["a"])
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        payload, _ = a.prepare_payload("b")
        assert a.watermark("b", "a") == 0
        b.ingest_payload("a", payload)
        assert b.watermark("a", "a") == 0

    def test_report_once_over_three_party_relay(self):
        """a's events reach c via b; b must not re-report to a."""
        a = HistoryModule("a", ["b"], track_reports=True)
        b = HistoryModule("b", ["a", "c"], track_reports=True)
        c = HistoryModule("c", ["b"], track_reports=True)
        s1 = send("a", 0, 1.0, dest="b")
        a.record_local(s1)
        pay1, _ = a.prepare_payload("b")
        b.ingest_payload("a", pay1)
        r1 = recv("b", 0, 2.0, s1)
        b.record_local(r1)
        s2 = send("b", 1, 3.0, dest="c")
        b.record_local(s2)
        pay2, _ = b.prepare_payload("c")
        c.ingest_payload("b", pay2)
        # a's event s1 was forwarded to c exactly once
        assert b.stats.reports[(s1.eid, "c")] == 1
        assert (s1.eid, "a") not in b.stats.reports
        assert all(count == 1 for count in b.stats.reports.values())

    def test_gc_drops_fully_disseminated_events(self):
        a = HistoryModule("a", ["b"])
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        assert a.buffer_size() == 1
        a.prepare_payload("b")
        assert a.buffer_size() == 0  # only neighbor now covered

    def test_gc_keeps_events_other_neighbors_lack(self):
        a = HistoryModule("a", ["b", "c"])
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        a.prepare_payload("b")
        assert a.buffer_size() == 1  # c still lacks it

    def test_gc_disabled_buffer_grows(self):
        a = HistoryModule("a", ["b"], gc_enabled=False)
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        a.prepare_payload("b")
        assert a.buffer_size() == 1


class TestUnreliableMode:
    def script(self):
        a = HistoryModule("a", ["b"], reliable=False)
        b = HistoryModule("b", ["a"], reliable=False)
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        return a, b, s

    def test_no_advance_until_confirm(self):
        a, b, s = self.script()
        payload, token = a.prepare_payload("b")
        assert a.watermark("b", "a") == -1
        a.confirm_delivery(token)
        assert a.watermark("b", "a") == 0

    def test_abort_keeps_events_for_retransmission(self):
        a, b, s = self.script()
        payload, token = a.prepare_payload("b")
        a.abort_delivery(token)
        assert a.buffer_size() == 1
        # the next payload re-reports the same event
        s2 = send("a", 1, 2.0, dest="b")
        a.record_local(s2)
        payload2, token2 = a.prepare_payload("b")
        assert s in payload2.records and s2 in payload2.records

    def test_lost_then_delivered_payload_never_gaps(self):
        a, b, s = self.script()
        payload1, token1 = a.prepare_payload("b")
        a.abort_delivery(token1)  # payload1 lost
        s2 = send("a", 1, 2.0, dest="b")
        a.record_local(s2)
        payload2, token2 = a.prepare_payload("b")
        # payload2 arrives: contains the full contiguous range
        new_events, _ = b.ingest_payload("a", payload2)
        assert [e.eid for e in new_events] == [s.eid, s2.eid]
        a.confirm_delivery(token2)
        assert a.watermark("b", "a") == 1

    def test_token_settled_twice_rejected(self):
        a, b, s = self.script()
        _payload, token = a.prepare_payload("b")
        a.confirm_delivery(token)
        with pytest.raises(ProtocolError):
            a.confirm_delivery(token)
        with pytest.raises(ProtocolError):
            a.abort_delivery(token)

    def test_reliable_token_autosettled(self):
        a = HistoryModule("a", ["b"])  # reliable
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        _payload, token = a.prepare_payload("b")
        with pytest.raises(ProtocolError):
            a.confirm_delivery(token)


class TestLossFlags:
    def test_flags_disseminate_once_per_neighbor(self):
        a = HistoryModule("a", ["b"])
        flag = EventId("a", 0)
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        assert a.record_loss(flag)
        assert not a.record_loss(flag)  # idempotent
        s2 = send("a", 1, 2.0, dest="b")
        a.record_local(s2)
        payload, _ = a.prepare_payload("b")
        assert payload.loss_flags == (flag,)
        s3 = send("a", 2, 3.0, dest="b")
        a.record_local(s3)
        payload2, _ = a.prepare_payload("b")
        assert payload2.loss_flags == ()

    def test_receiver_learns_and_does_not_echo_flags(self):
        a = HistoryModule("a", ["b"])
        b = HistoryModule("b", ["a"])
        flag = EventId("a", 0)
        s = send("a", 0, 1.0, dest="b")
        a.record_local(s)
        a.record_loss(flag)
        s2 = send("a", 1, 2.0, dest="b")
        a.record_local(s2)
        payload, _ = a.prepare_payload("b")
        _, new_flags = b.ingest_payload("a", payload)
        assert new_flags == [flag]
        assert flag in b.loss_flags
        # b never ships the flag back to a
        r = recv("b", 0, 3.0, s2)
        b.record_local(r)
        s3 = send("b", 1, 4.0, dest="a")
        b.record_local(s3)
        back, _ = b.prepare_payload("a")
        assert back.loss_flags == ()


class TestLemma31OnTraces:
    def test_view_completeness(self, line4_run):
        """Lemma 3.1: what each CSA knows at its last point is exactly the
        local view from that point (oracle: the omniscient trace)."""
        trace = line4_run.trace
        global_view = trace.global_view()
        for proc in line4_run.sim.network.processors:
            estimator = line4_run.sim.estimator(proc, "efficient")
            last = estimator.last_local_event
            if last is None:
                continue
            expected = global_view.view_from(last.eid)
            for other in line4_run.sim.network.processors:
                assert estimator.history.known_seq(other) == expected.last_seq(other)

    def test_payload_sizes_recorded(self, line4_run):
        for proc in line4_run.sim.network.processors:
            stats = line4_run.sim.estimator(proc, "efficient").history.stats
            if stats.payloads_sent:
                assert stats.max_payload >= 1
                assert stats.records_sent >= stats.payloads_sent  # send event itself
