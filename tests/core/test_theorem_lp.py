"""Theorem 2.1 validated against an independent linear-programming oracle.

The synchronization problem is a difference-constraint system: writing
``RT(x) = LT(x) + f(x)``, each synchronization-graph edge ``(x, y, w)``
asserts ``f(x) - f(y) <= w``.  The optimal bound on ``RT(p) - RT(q)`` is
therefore the LP optimum of ``f(p) - f(q)`` under those constraints.  The
theorem says this optimum equals the shortest-path distance ``d(p, q)``;
here we check our Bellman-Ford answers against ``scipy.optimize.linprog``
on views harvested from real simulations - a fully independent solver.
"""

import math

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.core import (
    EfficientCSA,
    bellman_ford_from,
    build_sync_graph,
)
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import RandomTraffic


def lp_extreme(graph, p, q, sense):
    """Max (sense=+1) or min (sense=-1) of f(p) - f(q) under the edge
    constraints; returns None when unbounded."""
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    rows = []
    rhs = []
    for x, y, w in graph.edges():
        row = [0.0] * len(nodes)
        row[index[x]] = 1.0
        row[index[y]] = -1.0
        rows.append(row)
        rhs.append(w)
    c = [0.0] * len(nodes)
    # linprog minimises; to maximise f(p) - f(q) minimise its negation
    c[index[p]] = -1.0 * sense
    c[index[q]] = 1.0 * sense
    result = linprog(
        c,
        A_ub=np.array(rows),
        b_ub=np.array(rhs),
        bounds=[(None, None)] * len(nodes),
        method="highs",
    )
    if result.status == 3:  # unbounded
        return None
    assert result.status == 0, result.message
    return -result.fun * sense if sense == 1 else None  # sense=-1 unused here


@pytest.fixture(scope="module")
def harvested_view():
    names, links = topologies.random_connected(5, 2, seed=13)
    network = standard_network(names, links, seed=13, drift_ppm=400)
    result = run_workload(
        network,
        RandomTraffic(rate=3.0, seed=13),
        {"efficient": lambda p, s: EfficientCSA(p, s)},
        duration=20.0,
        seed=13,
    )
    view = result.trace.global_view()
    return view, network.spec


def test_distances_equal_lp_optimum(harvested_view):
    view, spec = harvested_view
    graph = build_sync_graph(view, spec)
    # check a spread of pairs: last event of each processor vs the others
    points = [view.last_event(proc).eid for proc in view.processors]
    checked = 0
    for p in points:
        dist = bellman_ford_from(graph, p)
        for q in points:
            if p == q:
                continue
            lp_max = lp_extreme(graph, p, q, sense=1)
            d_pq = dist.get(q, math.inf)
            if lp_max is None:
                assert math.isinf(d_pq)
            else:
                assert d_pq == pytest.approx(lp_max, abs=1e-6)
                checked += 1
    assert checked >= 6  # the comparison really ran


def test_lp_certifies_interval_endpoints(harvested_view):
    """The external-synchronization interval endpoints are LP optima of
    RT(p) itself once the source is pinned to real time."""
    from repro.core import external_bounds, source_point

    view, spec = harvested_view
    graph = build_sync_graph(view, spec)
    sp = source_point(view, spec)
    p = view.last_event(view.processors[-1]).eid
    if p.proc == spec.source:
        p = view.last_event(view.processors[0]).eid
    bound = external_bounds(view, spec, p, graph)
    # RT(p) - RT(sp) = virt_del(p, sp) + (f(p) - f(sp)); RT(sp) = LT(sp)
    virt_del = view.event(p).lt - view.event(sp).lt
    lp_max = lp_extreme(graph, p, sp, sense=1)
    lp_min_neg = lp_extreme(graph, sp, p, sense=1)  # max of f(sp) - f(p)
    lt_sp = view.event(sp).lt
    if lp_max is not None:
        assert bound.upper == pytest.approx(
            lt_sp + virt_del + lp_max, abs=1e-6
        )
    if lp_min_neg is not None:
        assert bound.lower == pytest.approx(
            lt_sp + virt_del - lp_min_neg, abs=1e-6
        )
