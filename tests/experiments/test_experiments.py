"""Each experiment runs (at reduced scale) with every claim check passing.

These are the executable versions of EXPERIMENTS.md: a reproduction claim
that stops passing is a regression.
"""

import pytest

from repro.experiments import REGISTRY, get_experiment
from repro.experiments.cli import QUICK_OVERRIDES, main


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "e1-optimality",
            "e2-report-once",
            "e3-history-space",
            "e4-agdp-cost",
            "e5-live-points",
            "e6-ntp-pattern",
            "e7-cristian-pattern",
            "e8-width-vs-baselines",
            "e9-message-loss",
            "a1-agdp-gc-ablation",
            "a2-history-gc-ablation",
            "x1-internal-sync",
            "e10-convergence",
            "x2-adaptive-polling",
            "chaos-soak",
            "e11-churn",
            "e12-hierarchy",
        }
        assert set(REGISTRY) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("e99-imaginary")

    def test_quick_overrides_cover_registry(self):
        assert set(QUICK_OVERRIDES) == set(REGISTRY)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_experiment_passes_quick(name):
    run = get_experiment(name)
    result = run(seed=0, **QUICK_OVERRIDES[name])
    assert result.rows, f"{name} produced no rows"
    assert result.checks, f"{name} produced no checks"
    failing = [c for c in result.checks if not c.passed]
    assert not failing, f"{name}: {[str(c) for c in failing]}"
    rendered = result.render()
    assert name in rendered and "PASS" in rendered


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1-optimality" in out

    def test_run_single_quick(self, capsys):
        assert main(["--quick", "e4-agdp-cost"]) == 0
        out = capsys.readouterr().out
        assert "e4-agdp-cost" in out
        assert "FAIL" not in out

    def test_markdown_output(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(["--quick", "--markdown", str(target), "e4-agdp-cost"]) == 0
        text = target.read_text()
        assert text.startswith("## e4-agdp-cost")
        assert "| L |" in text
        assert "- PASS" in text

    def test_unknown_experiment_name_errors(self):
        with pytest.raises(KeyError):
            main(["no-such-experiment"])

    def test_failing_check_sets_exit_code(self, capsys, monkeypatch):
        from repro.experiments import base
        from repro.experiments.base import ExperimentResult
        from repro.analysis.claims import ClaimCheck

        def doomed(**_kwargs):
            return ExperimentResult(
                experiment="doomed",
                description="always fails",
                rows=[{"x": 1}],
                checks=[ClaimCheck("never", False)],
            )

        monkeypatch.setitem(base.REGISTRY, "doomed", doomed)
        assert main(["doomed"]) == 1
        out = capsys.readouterr()
        assert "FAIL" in out.out
        assert "failing checks" in out.err
