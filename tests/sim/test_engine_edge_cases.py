"""Edge-case engine behaviour: exact delays, asymmetric links, grids."""

import pytest

from repro.core import EfficientCSA, TransitSpec
from repro.sim import (
    AffineClock,
    LinkConfig,
    Network,
    PiecewiseDriftingClock,
    Simulation,
    run_workload,
    standard_network,
    topologies,
)
from repro.sim.workloads import PeriodicGossip


class TestExactDelayLinks:
    def test_exact_delay_gives_exact_offsets(self):
        """With a known-exact transit time, one message pins the remote
        clock perfectly (width collapses to ~0)."""
        clocks = {"a": AffineClock(offset=7.5, rate=1.0)}
        network = Network(
            source="s",
            clocks=clocks,
            links=[LinkConfig("s", "a", transit=TransitSpec.exactly(0.25))],
        )
        sim = Simulation(network, seed=0)
        sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s))
        sim.schedule_at(1.0, lambda: sim.send("s", "a"))
        sim.run_until(10.0)
        bound = sim.estimator("a", "efficient").estimate()
        assert bound.width == pytest.approx(0.0, abs=1e-9)
        # and it is the truth
        receive = [r for r in sim.trace if r.event.is_receive][0]
        assert bound.contains(receive.rt, tolerance=1e-9)


class TestAsymmetricLinks:
    def test_direction_specific_bounds_used(self):
        """A link fast one way, slow the other: the estimate quality
        differs by direction exactly as the specs say."""
        clocks = {"a": PiecewiseDriftingClock(3, offset=2.0)}
        network = Network(
            source="s",
            clocks=clocks,
            links=[
                LinkConfig(
                    "s",
                    "a",
                    transit=TransitSpec(0.01, 0.02),      # s -> a: tight
                    transit_back=TransitSpec(0.01, 2.0),  # a -> s: sloppy
                )
            ],
        )
        sim = Simulation(network, seed=1)
        sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s))
        sim.schedule_at(1.0, lambda: sim.send("s", "a"))
        sim.run_until(10.0)
        bound = sim.estimator("a", "efficient").estimate()
        # one tight-direction message: width ~ forward slack 0.01
        assert bound.width <= 0.011

    def test_delays_sampled_per_direction(self):
        clocks = {"a": PiecewiseDriftingClock(3)}
        network = Network(
            source="s",
            clocks=clocks,
            links=[
                LinkConfig(
                    "s",
                    "a",
                    transit=TransitSpec(0.0, 0.1),
                    transit_back=TransitSpec(1.0, 1.1),
                )
            ],
        )
        sim = Simulation(network, seed=2)
        for i in range(10):
            sim.schedule_at(float(i + 1) * 3, lambda: sim.send("s", "a"))
            sim.schedule_at(float(i + 1) * 3 + 1.5, lambda: sim.send("a", "s"))
        sim.run_until(100.0)
        send_rt = {r.event.eid: r.rt for r in sim.trace if r.event.is_send}
        for record in sim.trace:
            if not record.event.is_receive:
                continue
            delay = record.rt - send_rt[record.event.send_eid]
            if record.event.proc == "a":
                assert delay <= 0.1 + 1e-9
            else:
                assert 1.0 - 1e-9 <= delay <= 1.1 + 1e-9


class TestGridRun:
    def test_grid_gossip_end_to_end(self):
        names, links = topologies.grid(3, 3)
        network = standard_network(names, links, seed=8, drift_ppm=150)
        result = run_workload(
            network,
            PeriodicGossip(period=6.0, seed=8),
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=60.0,
            seed=8,
            sample_period=10.0,
        )
        assert result.soundness_violations() == []
        corner = result.sim.estimator("p2_2", "efficient")
        assert corner.estimate().is_bounded


class TestSourcePlacement:
    def test_source_in_middle_of_line(self):
        """Asymmetric information flow when the source is interior."""
        names, links = topologies.line(5)
        network = standard_network(names, links, source="p2", seed=9)
        result = run_workload(
            network,
            PeriodicGossip(period=5.0, seed=9),
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=80.0,
            seed=9,
            sample_period=20.0,
        )
        assert result.soundness_violations() == []
        # one-hop neighbors converge tighter than two-hop ends
        def final_width(proc):
            return result.sim.estimator(proc, "efficient").estimate().width

        assert final_width("p1") < final_width("p0")
        assert final_width("p3") < final_width("p4")
