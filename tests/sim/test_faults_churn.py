"""Engine-level churn faults: late joins, state corruption, re-convergence.

The event-driven engine counterpart of the schedule-level churn tests:
:class:`~repro.sim.faults.LateJoin` admits a processor mid-run via the
sponsor handshake, :class:`~repro.sim.faults.StateCorruption` scrambles
a victim's estimator in place, and :class:`~repro.sim.runner.RunResult`
measures the re-convergence lag back to Theorem 2.1 bounds.
"""

import math

import pytest

from repro.core import EfficientCSA
from repro.core.csa_base import SuspicionPolicy
from repro.core.errors import SimulationError
from repro.sim.faults import (
    CORRUPTION_SCOPES,
    CrashWindow,
    FaultPlan,
    LateJoin,
    RetransmitPolicy,
    StateCorruption,
)
from repro.sim.network import topologies
from repro.sim.runner import run_workload, standard_network
from repro.sim.workloads import PeriodicGossip

NAMES, LINKS = topologies.line(4)


def network(seed=0):
    # unreliable mode: a crashed (or not-yet-joined) processor drops
    # arrivals, and only the loss-detection path re-ships that knowledge
    return standard_network(NAMES, LINKS, seed=seed, loss_prob=0.01)


def run(plan, *, self_heal=False, duration=30.0, seed=0):
    return run_workload(
        network(seed),
        PeriodicGossip(period=1.0, seed=seed),
        {
            "efficient": lambda p, s: EfficientCSA(
                p,
                s,
                reliable=False,
                self_heal=self_heal,
                suspicion=SuspicionPolicy() if self_heal else None,
            )
        },
        duration=duration,
        seed=seed,
        sample_period=1.0,
        faults=plan,
        retransmit=RetransmitPolicy(timeout=1.0, backoff=2.0, max_retries=3),
    )


class TestInjectionValidation:
    def test_corruption_scope_is_checked(self):
        with pytest.raises(SimulationError, match="scope"):
            StateCorruption("a", 1.0, "flux-capacitor")

    def test_corruption_time_is_checked(self):
        with pytest.raises(SimulationError, match=">= 0"):
            StateCorruption("a", -1.0)

    def test_join_cannot_self_sponsor(self):
        with pytest.raises(SimulationError, match="sponsor"):
            LateJoin("a", 1.0, sponsor="a")

    def test_join_time_is_checked(self):
        with pytest.raises(SimulationError, match=">= 0"):
            LateJoin("a", -0.5, sponsor="b")


class TestCrashedBeforeJoin:
    def test_not_yet_joined_behaves_as_crashed(self):
        plan = FaultPlan(injections=(LateJoin(NAMES[3], 10.0, sponsor=NAMES[2]),))
        active = plan.bind(network())
        assert active.crashed(NAMES[3], 0.0)
        assert active.crashed(NAMES[3], 9.99)
        assert not active.crashed(NAMES[3], 10.0)
        assert not active.crashed(NAMES[2], 5.0)  # everyone else is up


class TestLateJoinRuns:
    def test_sponsored_join_bootstraps_and_converges(self):
        join_at = 12.0
        plan = FaultPlan(injections=(LateJoin(NAMES[3], join_at, sponsor=NAMES[2]),))
        result = run(plan)
        assert result.sim.faults.injected["joins_bootstrapped"] == 1
        assert result.sim.faults.injected["joins_cold"] == 0
        # absent means absent: every pre-join sample is the vacuous bound
        pre = [s for s in result.samples_for("efficient", NAMES[3]) if s.rt < join_at]
        assert pre and all(not s.bound.is_bounded for s in pre)
        lag, examined = result.reconvergence_after(join_at, NAMES[3], "efficient")
        assert math.isfinite(lag)
        assert examined > 0
        assert result.soundness_violations() == []

    def test_join_with_crashed_sponsor_comes_up_cold(self):
        join_at = 12.0
        plan = FaultPlan(
            injections=(
                CrashWindow(NAMES[2], 10.0, 16.0),
                LateJoin(NAMES[3], join_at, sponsor=NAMES[2]),
            )
        )
        result = run(plan)
        assert result.sim.faults.injected["joins_cold"] == 1
        assert result.sim.faults.injected["joins_bootstrapped"] == 0
        # cold is slower but equally sound: regular traffic still teaches it
        assert result.soundness_violations() == []


class TestStateCorruptionRuns:
    @pytest.mark.parametrize("scope", CORRUPTION_SCOPES)
    def test_self_healing_victim_recovers(self, scope):
        corrupt_at = 15.0
        victim = NAMES[1]
        plan = FaultPlan(injections=(StateCorruption(victim, corrupt_at, scope),))
        result = run(plan, self_heal=True)
        assert result.sim.faults.injected["corruptions"] == 1
        recoveries = result.recovery_events("efficient")
        assert len(recoveries.get((victim, "efficient"), ())) >= 1
        lag, _examined = result.reconvergence_after(corrupt_at, victim, "efficient")
        assert math.isfinite(lag)
        assert result.soundness_violations() == []

    def test_non_healing_estimator_refuses_the_scramble(self):
        plan = FaultPlan(injections=(StateCorruption(NAMES[1], 15.0, "agdp"),))
        result = run(plan, self_heal=False)
        assert result.sim.faults.injected["corruptions"] == 0
        assert result.sim.faults.injected["corruptions_skipped"] == 1
        assert result.recovery_events("efficient") == {}
        assert result.soundness_violations() == []
