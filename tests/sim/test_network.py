"""Tests for topology and network configuration."""

import math
import random

import pytest

from repro.core import SimulationError, TransitSpec, link_id
from repro.sim import LinkConfig, Network, PerfectClock, PiecewiseDriftingClock, topologies


class TestLinkConfig:
    def test_canonical_id(self):
        link = LinkConfig("b", "a")
        assert link.lid == ("a", "b")

    def test_self_link_rejected(self):
        with pytest.raises(SimulationError):
            LinkConfig("a", "a")

    def test_loss_prob_validated(self):
        with pytest.raises(SimulationError):
            LinkConfig("a", "b", loss_prob=1.0)
        with pytest.raises(SimulationError):
            LinkConfig("a", "b", loss_prob=-0.1)

    def test_spec_for_directions(self):
        link = LinkConfig(
            "a",
            "b",
            transit=TransitSpec(0.1, 0.2),
            transit_back=TransitSpec(0.3, 0.4),
        )
        assert link.spec_for("a") == TransitSpec(0.1, 0.2)
        assert link.spec_for("b") == TransitSpec(0.3, 0.4)
        with pytest.raises(SimulationError):
            link.spec_for("c")

    def test_symmetric_by_default(self):
        link = LinkConfig("a", "b", transit=TransitSpec(0.1, 0.2))
        assert link.spec_for("a") == link.spec_for("b")

    def test_sample_delay_within_spec(self):
        link = LinkConfig("a", "b", transit=TransitSpec(0.1, 0.5))
        rng = random.Random(0)
        for _ in range(200):
            delay = link.sample_delay("a", rng)
            assert 0.1 <= delay <= 0.5

    def test_sample_delay_unbounded_uses_span(self):
        link = LinkConfig("a", "b", transit=TransitSpec(0.1, math.inf), unbounded_span=2.0)
        rng = random.Random(0)
        for _ in range(100):
            delay = link.sample_delay("a", rng)
            assert 0.1 <= delay <= 2.1


class TestNetwork:
    def make(self):
        clocks = {"a": PiecewiseDriftingClock(1), "b": PiecewiseDriftingClock(2)}
        links = [LinkConfig("s", "a"), LinkConfig("a", "b")]
        return Network(source="s", clocks=clocks, links=links)

    def test_source_gets_perfect_clock(self):
        network = self.make()
        assert isinstance(network.clocks["s"], PerfectClock)
        assert network.spec.drift_of("s").is_drift_free

    def test_nonperfect_source_clock_rejected(self):
        with pytest.raises(SimulationError):
            Network(
                source="s",
                clocks={"s": PiecewiseDriftingClock(0)},
                links=[],
            )

    def test_duplicate_link_rejected(self):
        with pytest.raises(SimulationError):
            Network(
                source="s",
                clocks={"a": PiecewiseDriftingClock(1)},
                links=[LinkConfig("s", "a"), LinkConfig("a", "s")],
            )

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(SimulationError):
            Network(source="s", clocks={}, links=[LinkConfig("s", "ghost")])

    def test_spec_derived(self):
        network = self.make()
        assert network.spec.has_link("s", "a")
        assert network.spec.drift_of("a") == network.clocks["a"].advertised

    def test_link_between(self):
        network = self.make()
        assert network.link_between("b", "a").lid == ("a", "b")
        with pytest.raises(SimulationError):
            network.link_between("s", "b")

    def test_neighbors(self):
        network = self.make()
        assert network.neighbors("a") == ("b", "s")


class TestTopologies:
    def test_line(self):
        names, links = topologies.line(4)
        assert len(names) == 4
        assert len(links) == 3

    def test_ring(self):
        names, links = topologies.ring(5)
        assert len(links) == 5

    def test_star(self):
        names, links = topologies.star(6)
        assert len(links) == 5
        assert all(u == "p0" for u, _v in links)

    def test_grid(self):
        names, links = topologies.grid(3, 4)
        assert len(names) == 12
        assert len(links) == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_tree(self):
        names, links = topologies.tree(7, fanout=2)
        assert len(links) == 6
        # node i's parent is (i-1)//2
        assert ("p0", "p1") in links and ("p1", "p3") in links

    def test_random_connected_is_connected(self):
        names, links = topologies.random_connected(12, 5, seed=3)
        adjacency = {n: set() for n in names}
        for u, v in links:
            adjacency[u].add(v)
            adjacency[v].add(u)
        seen = {names[0]}
        frontier = [names[0]]
        while frontier:
            node = frontier.pop()
            for nb in adjacency[node]:
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        assert seen == set(names)

    def test_random_connected_deterministic(self):
        assert topologies.random_connected(8, 3, seed=9) == topologies.random_connected(
            8, 3, seed=9
        )

    def test_random_connected_no_duplicate_links(self):
        _names, links = topologies.random_connected(10, 8, seed=1)
        canon = [link_id(u, v) for u, v in links]
        assert len(canon) == len(set(canon))
