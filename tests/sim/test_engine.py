"""Tests for the discrete-event engine: scheduling, FIFO, loss, hooks."""

import math

import pytest

from repro.core import EfficientCSA, EventId, SimulationError, TransitSpec
from repro.sim import LinkConfig, Network, PiecewiseDriftingClock, Simulation


def tiny_network(loss_prob=0.0, transit=(0.05, 0.2)):
    clocks = {"a": PiecewiseDriftingClock(1, offset=3.0)}
    links = [
        LinkConfig("s", "a", transit=TransitSpec(*transit), loss_prob=loss_prob)
    ]
    return Network(source="s", clocks=clocks, links=links)


class TestScheduling:
    def test_actions_run_in_time_order(self):
        sim = Simulation(tiny_network())
        order = []
        sim.schedule_at(2.0, lambda: order.append("b"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(3.0, lambda: order.append("c"))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion(self):
        sim = Simulation(tiny_network())
        order = []
        sim.schedule_at(1.0, lambda: order.append("first"))
        sim.schedule_at(1.0, lambda: order.append("second"))
        sim.run_until(10.0)
        assert order == ["first", "second"]

    def test_past_scheduling_rejected(self):
        sim = Simulation(tiny_network())
        sim.schedule_at(5.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_stops_at_limit(self):
        sim = Simulation(tiny_network())
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(1))
        sim.schedule_at(15.0, lambda: fired.append(2))
        executed = sim.run_until(10.0)
        assert executed == 1
        assert fired == [1]
        assert sim.now == 10.0
        assert sim.pending_actions() == 1

    def test_schedule_local_converts_clock(self):
        sim = Simulation(tiny_network())
        hits = []
        # a's clock starts at +3; local time 4.0 is about rt 1.0
        sim.schedule_local("a", 4.0, lambda: hits.append(sim.now))
        sim.run_until(10.0)
        assert len(hits) == 1
        assert hits[0] == pytest.approx(1.0, abs=0.01)

    def test_max_actions(self):
        sim = Simulation(tiny_network())
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda: None)
        assert sim.run_until(100.0, max_actions=3) == 3


class TestEvents:
    def test_internal_event_recorded(self):
        sim = Simulation(tiny_network())
        event = sim.internal_event("a")
        assert event.eid == EventId("a", 0)
        assert len(sim.trace) == 1

    def test_event_lts_strictly_increase(self):
        sim = Simulation(tiny_network())
        first = sim.internal_event("a")
        second = sim.internal_event("a")  # same sim.now: engine nudges
        assert second.lt > first.lt
        assert second.eid.seq == 1

    def test_send_and_delivery(self):
        sim = Simulation(tiny_network())
        sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s))
        sim.schedule_at(1.0, lambda: sim.send("s", "a"))
        sim.run_until(10.0)
        assert len(sim.trace) == 2
        receive = [r for r in sim.trace if r.event.is_receive][0]
        send = [r for r in sim.trace if r.event.is_send][0]
        delay = receive.rt - send.rt
        assert 0.05 <= delay <= 0.2

    def test_send_without_link_rejected(self):
        sim = Simulation(tiny_network())
        with pytest.raises(SimulationError):
            sim.send("s", "ghost")

    def test_duplicate_estimator_channel_rejected(self):
        sim = Simulation(tiny_network())
        sim.attach_estimators("x", lambda p, s: EfficientCSA(p, s))
        with pytest.raises(SimulationError):
            sim.attach_estimators("x", lambda p, s: EfficientCSA(p, s))


class TestFIFO:
    def test_per_direction_fifo(self):
        """Many rapid sends on one link always arrive in order."""
        sim = Simulation(tiny_network(transit=(0.05, 5.0)), seed=3)
        for i in range(40):
            sim.schedule_at(0.1 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        receives = [r for r in sim.trace if r.event.is_receive]
        assert len(receives) == 40
        send_seqs = [r.event.send_eid.seq for r in receives]
        assert send_seqs == sorted(send_seqs)

    def test_fifo_delays_stay_in_spec(self):
        sim = Simulation(tiny_network(transit=(0.05, 5.0)), seed=3)
        for i in range(40):
            sim.schedule_at(0.1 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        send_rt = {r.event.eid: r.rt for r in sim.trace if r.event.is_send}
        for record in sim.trace:
            if not record.event.is_receive:
                continue
            delay = record.rt - send_rt[record.event.send_eid]
            assert 0.05 - 1e-9 <= delay <= 5.0 + 1e-6


class TestLoss:
    def test_losses_occur_and_are_detected(self):
        sim = Simulation(tiny_network(loss_prob=0.5), seed=1, loss_detection_delay=1.0)
        detected = []
        sim.on_loss = lambda _sim, send_event, _info: detected.append(send_event.eid)
        for i in range(40):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        assert sim.messages_lost > 5
        assert len(detected) == sim.messages_lost
        assert sim.trace.lost_sends == set(detected)

    def test_no_receive_for_lost_messages(self):
        sim = Simulation(tiny_network(loss_prob=0.5), seed=1)
        for i in range(40):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        receives = sum(1 for r in sim.trace if r.event.is_receive)
        assert receives == sim.messages_sent - sim.messages_lost

    def test_delivery_confirmations(self):
        sim = Simulation(
            tiny_network(loss_prob=0.3), seed=2, confirm_deliveries=True
        )
        sim.attach_estimators(
            "efficient", lambda p, s: EfficientCSA(p, s, reliable=False)
        )
        for i in range(30):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        source_csa = sim.estimator("s", "efficient")
        # every token settled: confirmed on delivery or aborted on detection
        assert sim.messages_lost > 0
        assert source_csa.history.pending_tokens() == 0


class TestWorkloadHooks:
    def test_on_message_hook(self):
        sim = Simulation(tiny_network(), seed=0)
        seen = []
        sim.on_message = lambda _sim, event, info: seen.append((event.proc, info))
        sim.schedule_at(1.0, lambda: sim.send("s", "a", info="hello"))
        sim.run_until(10.0)
        assert seen == [("a", "hello")]
