"""Tests for the discrete-event engine: scheduling, FIFO, loss, hooks."""

import math

import pytest

from repro.core import EfficientCSA, EventId, SimulationError, TransitSpec
from repro.sim import LinkConfig, Network, PiecewiseDriftingClock, Simulation


def tiny_network(loss_prob=0.0, transit=(0.05, 0.2)):
    clocks = {"a": PiecewiseDriftingClock(1, offset=3.0)}
    links = [
        LinkConfig("s", "a", transit=TransitSpec(*transit), loss_prob=loss_prob)
    ]
    return Network(source="s", clocks=clocks, links=links)


class TestScheduling:
    def test_actions_run_in_time_order(self):
        sim = Simulation(tiny_network())
        order = []
        sim.schedule_at(2.0, lambda: order.append("b"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(3.0, lambda: order.append("c"))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion(self):
        sim = Simulation(tiny_network())
        order = []
        sim.schedule_at(1.0, lambda: order.append("first"))
        sim.schedule_at(1.0, lambda: order.append("second"))
        sim.run_until(10.0)
        assert order == ["first", "second"]

    def test_past_scheduling_rejected(self):
        sim = Simulation(tiny_network())
        sim.schedule_at(5.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_stops_at_limit(self):
        sim = Simulation(tiny_network())
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(1))
        sim.schedule_at(15.0, lambda: fired.append(2))
        executed = sim.run_until(10.0)
        assert executed == 1
        assert fired == [1]
        assert sim.now == 10.0
        assert sim.pending_actions() == 1

    def test_schedule_local_converts_clock(self):
        sim = Simulation(tiny_network())
        hits = []
        # a's clock starts at +3; local time 4.0 is about rt 1.0
        sim.schedule_local("a", 4.0, lambda: hits.append(sim.now))
        sim.run_until(10.0)
        assert len(hits) == 1
        assert hits[0] == pytest.approx(1.0, abs=0.01)

    def test_max_actions(self):
        sim = Simulation(tiny_network())
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda: None)
        assert sim.run_until(100.0, max_actions=3) == 3


class TestEvents:
    def test_internal_event_recorded(self):
        sim = Simulation(tiny_network())
        event = sim.internal_event("a")
        assert event.eid == EventId("a", 0)
        assert len(sim.trace) == 1

    def test_event_lts_strictly_increase(self):
        sim = Simulation(tiny_network())
        first = sim.internal_event("a")
        second = sim.internal_event("a")  # same sim.now: engine nudges
        assert second.lt > first.lt
        assert second.eid.seq == 1

    def test_send_and_delivery(self):
        sim = Simulation(tiny_network())
        sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s))
        sim.schedule_at(1.0, lambda: sim.send("s", "a"))
        sim.run_until(10.0)
        assert len(sim.trace) == 2
        receive = [r for r in sim.trace if r.event.is_receive][0]
        send = [r for r in sim.trace if r.event.is_send][0]
        delay = receive.rt - send.rt
        assert 0.05 <= delay <= 0.2

    def test_send_without_link_rejected(self):
        sim = Simulation(tiny_network())
        with pytest.raises(SimulationError):
            sim.send("s", "ghost")

    def test_duplicate_estimator_channel_rejected(self):
        sim = Simulation(tiny_network())
        sim.attach_estimators("x", lambda p, s: EfficientCSA(p, s))
        with pytest.raises(SimulationError):
            sim.attach_estimators("x", lambda p, s: EfficientCSA(p, s))


class TestFIFO:
    def test_per_direction_fifo(self):
        """Many rapid sends on one link always arrive in order."""
        sim = Simulation(tiny_network(transit=(0.05, 5.0)), seed=3)
        for i in range(40):
            sim.schedule_at(0.1 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        receives = [r for r in sim.trace if r.event.is_receive]
        assert len(receives) == 40
        send_seqs = [r.event.send_eid.seq for r in receives]
        assert send_seqs == sorted(send_seqs)

    def test_fifo_delays_stay_in_spec(self):
        sim = Simulation(tiny_network(transit=(0.05, 5.0)), seed=3)
        for i in range(40):
            sim.schedule_at(0.1 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        send_rt = {r.event.eid: r.rt for r in sim.trace if r.event.is_send}
        for record in sim.trace:
            if not record.event.is_receive:
                continue
            delay = record.rt - send_rt[record.event.send_eid]
            assert 0.05 - 1e-9 <= delay <= 5.0 + 1e-6


class TestLoss:
    def test_losses_occur_and_are_detected(self):
        sim = Simulation(tiny_network(loss_prob=0.5), seed=1, loss_detection_delay=1.0)
        detected = []
        sim.on_loss = lambda _sim, send_event, _info: detected.append(send_event.eid)
        for i in range(40):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        assert sim.messages_lost > 5
        assert len(detected) == sim.messages_lost
        assert sim.trace.lost_sends == set(detected)

    def test_no_receive_for_lost_messages(self):
        sim = Simulation(tiny_network(loss_prob=0.5), seed=1)
        for i in range(40):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        receives = sum(1 for r in sim.trace if r.event.is_receive)
        assert receives == sim.messages_sent - sim.messages_lost

    def test_delivery_confirmations(self):
        sim = Simulation(
            tiny_network(loss_prob=0.3), seed=2, confirm_deliveries=True
        )
        sim.attach_estimators(
            "efficient", lambda p, s: EfficientCSA(p, s, reliable=False)
        )
        for i in range(30):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        source_csa = sim.estimator("s", "efficient")
        # every token settled: confirmed on delivery or aborted on detection
        assert sim.messages_lost > 0
        assert source_csa.history.pending_tokens() == 0


class TestWorkloadHooks:
    def test_on_message_hook(self):
        sim = Simulation(tiny_network(), seed=0)
        seen = []
        sim.on_message = lambda _sim, event, info: seen.append((event.proc, info))
        sim.schedule_at(1.0, lambda: sim.send("s", "a", info="hello"))
        sim.run_until(10.0)
        assert seen == [("a", "hello")]


class RecordingCSA(EfficientCSA):
    """EfficientCSA that logs every hook invocation into a shared list."""

    def __init__(self, proc, spec, log):
        super().__init__(proc, spec, reliable=False)
        self.log = log

    def on_send(self, event):
        self.log.append(("send", self.proc, event.eid))
        return super().on_send(event)

    def on_receive(self, event, payload):
        self.log.append(("receive", self.proc, event.send_eid))
        super().on_receive(event, payload)

    def on_delivery_confirmed(self, send_eid):
        self.log.append(("confirm", self.proc, send_eid))
        super().on_delivery_confirmed(send_eid)

    def on_loss_detected(self, send_eid):
        self.log.append(("loss", self.proc, send_eid))
        super().on_loss_detected(send_eid)


class TestConfirmDeliveries:
    def test_confirmation_ordering(self):
        """Delivery path: receive at dest, then confirm at sender, then hook."""
        log = []
        sim = Simulation(tiny_network(), seed=0, confirm_deliveries=True)
        sim.attach_estimators("rec", lambda p, s: RecordingCSA(p, s, log))
        sim.on_message = lambda _sim, event, _info: log.append(
            ("hook", event.proc, event.send_eid)
        )
        sim.schedule_at(1.0, lambda: sim.send("s", "a"))
        sim.run_until(10.0)
        send_eid = EventId("s", 0)
        assert [entry[0] for entry in log] == ["send", "receive", "confirm", "hook"]
        assert log[1] == ("receive", "a", send_eid)
        assert log[2] == ("confirm", "s", send_eid)

    def test_no_confirmations_when_disabled(self):
        log = []
        sim = Simulation(tiny_network(), seed=0, confirm_deliveries=False)
        sim.attach_estimators("rec", lambda p, s: RecordingCSA(p, s, log))
        sim.schedule_at(1.0, lambda: sim.send("s", "a"))
        sim.run_until(10.0)
        assert not [entry for entry in log if entry[0] == "confirm"]

    def test_confirmation_settles_pending_token(self):
        log = []
        sim = Simulation(tiny_network(), seed=0, confirm_deliveries=True)
        sim.attach_estimators("rec", lambda p, s: RecordingCSA(p, s, log))
        sim.schedule_at(1.0, lambda: sim.send("s", "a"))
        source = sim.estimator("s", "rec")
        sim.run_until(0.999)
        assert source.history.pending_tokens() == 0
        sim.run_until(1.001)  # send happened, delivery still in flight
        assert source.history.pending_tokens() == 1
        sim.run_until(10.0)
        assert source.history.pending_tokens() == 0


class TestLossHookOrdering:
    def test_estimator_signal_precedes_workload_hook(self):
        """on_loss_detected fires at the sender's estimators before sim.on_loss."""
        log = []
        sim = Simulation(
            tiny_network(loss_prob=0.5), seed=1, loss_detection_delay=1.0
        )
        sim.attach_estimators("rec", lambda p, s: RecordingCSA(p, s, log))
        sim.on_loss = lambda _sim, send_event, _info: log.append(
            ("hook-loss", send_event.proc, send_event.eid)
        )
        for i in range(40):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        assert sim.messages_lost > 5
        loss_entries = [e for e in log if e[0] in ("loss", "hook-loss")]
        assert loss_entries, "expected loss signals"
        # signals come in (estimator, workload) pairs for the same send
        for estimator_entry, hook_entry in zip(
            loss_entries[0::2], loss_entries[1::2]
        ):
            assert estimator_entry[0] == "loss"
            assert hook_entry[0] == "hook-loss"
            assert estimator_entry[2] == hook_entry[2]

    def test_loss_signalled_at_sender_only(self):
        log = []
        sim = Simulation(
            tiny_network(loss_prob=0.5), seed=1, loss_detection_delay=1.0
        )
        sim.attach_estimators("rec", lambda p, s: RecordingCSA(p, s, log))
        for i in range(40):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        assert all(entry[1] == "s" for entry in log if entry[0] == "loss")


class TestLossAccounting:
    def test_drop_recorded_at_quiesce_inside_detection_window(self):
        """A drop within loss_detection_delay of the run end is still traced."""
        sim = Simulation(
            tiny_network(loss_prob=0.5), seed=1, loss_detection_delay=5.0
        )
        for i in range(40):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(20.2)  # inside the detection window of the last sends
        assert sim.messages_lost > 0
        # trace and counter agree at every instant, not only after detection
        assert len(sim.trace.lost_sends) == sim.messages_lost

    def test_per_link_counters_match_globals(self):
        sim = Simulation(tiny_network(loss_prob=0.4), seed=5)
        for i in range(30):
            sim.schedule_at(0.5 * (i + 1), lambda: sim.send("s", "a"))
        sim.run_until(100.0)
        counters = sim.link_stats[("s", "a")]
        assert counters.sent == sim.messages_sent == 30
        assert counters.lost == sim.messages_lost
        assert counters.delivered == sum(
            1 for r in sim.trace if r.event.is_receive
        )
        summary = sim.trace.link_summary()
        assert summary[("s", "a")]["sent"] == counters.sent
        assert summary[("s", "a")]["lost"] == counters.lost
