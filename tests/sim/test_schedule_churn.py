"""Schedule-level churn: validation, harness semantics, regressions.

The churn extension adds membership (``join``/``leave``/``rejoin``) and
time-varying edges (``link_down``/``link_up``) plus seeded state
corruption to the deterministic schedule language.  These tests pin the
validation rules, the harness's operational semantics (every churn op
degrades to a no-op when its precondition fails - the property that
keeps shrinking sound), and the two minimized regressions the
differential driver caught while this layer was built.
"""

import math

import pytest

from repro.core import EfficientCSA
from repro.sim.faults import CORRUPTION_SCOPES
from repro.sim.schedule import CHURN_OPS, Schedule, ScheduleHarness
from repro.testing.differential import run_differential


def churn_schedule(steps, *, n=3, edges=((0, 1), (1, 2)), initial=None, lossy=True):
    return Schedule(
        rates=(1.0,) * n,
        edges=tuple(edges),
        steps=tuple(steps),
        lossy=lossy,
        initial=initial,
    )


class TestValidation:
    def test_churn_ops_are_known_step_ops(self):
        schedule = churn_schedule(
            [
                ("leave", 1, 1, 0.1),
                ("rejoin", 1, 1, 0.1),
                ("join", 2, 1, 0.1),
                ("corrupt", 1, 0, 0.1),
                ("link_down", 0, 1, 0.1),
                ("link_up", 0, 1, 0.1),
            ]
        )
        assert set(op for op, *_ in schedule.steps) == set(CHURN_OPS)

    @pytest.mark.parametrize("op", ["leave", "rejoin", "link_down", "link_up"])
    def test_purging_ops_require_lossy(self, op):
        step = (op, 0, 1, 0.1) if op.startswith("link") else (op, 1, 1, 0.1)
        with pytest.raises(ValueError, match="lossy"):
            churn_schedule([step], lossy=False)

    @pytest.mark.parametrize("op", ["join", "leave", "rejoin"])
    def test_source_cannot_churn(self, op):
        with pytest.raises(ValueError, match="source"):
            churn_schedule([(op, 0, 1 if op == "join" else 0, 0.1)])

    def test_join_requires_an_edge_to_the_sponsor(self):
        with pytest.raises(ValueError, match="not an edge"):
            churn_schedule([("join", 2, 0, 0.1)])  # 0-2 is not a link

    def test_corrupt_scope_index_is_range_checked(self):
        with pytest.raises(ValueError, match="scope index"):
            churn_schedule([("corrupt", 1, len(CORRUPTION_SCOPES), 0.1)])

    def test_initial_must_contain_the_source(self):
        with pytest.raises(ValueError, match="source"):
            churn_schedule([], initial=(1, 2))

    def test_initial_rejects_duplicates_and_strays(self):
        with pytest.raises(ValueError, match="duplicate"):
            churn_schedule([], initial=(0, 1, 1))
        with pytest.raises(ValueError, match="out of range"):
            churn_schedule([], initial=(0, 7))

    def test_round_trip_preserves_membership(self):
        schedule = churn_schedule(
            [("join", 1, 0, 0.5), ("corrupt", 1, 1, 0.25)], initial=(0, 2)
        )
        assert Schedule.from_json(schedule.to_json()) == schedule


class TestHarnessSemantics:
    def test_absent_processor_cannot_exchange_messages(self):
        harness = ScheduleHarness(
            churn_schedule(
                [("send", 0, 1, 0.1), ("send", 1, 2, 0.1)], initial=(0, 2)
            )
        )
        harness.run()
        assert all(not q for q in harness.in_flight.values())
        assert harness.events == {}

    def test_join_adopts_the_sponsor_snapshot(self):
        schedule = churn_schedule(
            [
                ("send", 0, 1, 0.5),  # warm the sponsor first
                ("deliver", 0, 1, 0.5),
                ("join", 2, 1, 0.5),
            ],
            initial=(0, 1),
        )
        harness = ScheduleHarness(schedule)
        harness.run()
        assert "q2" in harness.present
        joiner = harness.csas["q2"]
        assert not joiner.is_fresh
        # the handshake receive anchors the adopted knowledge immediately
        # (the schedule spec advertises transit <= inf, so only the lower
        # bound can tighten - but tighten it does, off one handshake)
        assert math.isfinite(joiner.estimate().lower)

    def test_join_noops_when_sponsor_is_absent(self):
        harness = ScheduleHarness(
            churn_schedule([("join", 2, 1, 0.1)], initial=(0,))
        )
        harness.run()
        assert harness.present == {"q0"}

    def test_leave_purges_inbound_and_flags_the_sender(self):
        schedule = churn_schedule(
            [("send", 0, 1, 0.1), ("leave", 1, 1, 0.1)]
        )
        harness = ScheduleHarness(schedule)
        harness.run()
        assert harness.present == {"q0", "q2"}
        assert len(harness.flagged) == 1  # the in-flight send, truthfully
        assert not harness.in_flight[("q0", "q1")]

    def test_rejoin_returns_with_durable_state(self):
        schedule = churn_schedule(
            [
                ("send", 0, 1, 0.5),
                ("deliver", 0, 1, 0.5),
                ("leave", 1, 1, 0.5),
                ("rejoin", 1, 1, 0.5),
                ("send", 1, 2, 0.5),
                ("deliver", 1, 2, 0.5),
            ]
        )
        harness = ScheduleHarness(schedule)
        harness.run()
        # no handshake happened: q1 kept its estimator across the absence
        # and its post-rejoin send still carries usable knowledge to q2
        assert math.isfinite(harness.csas["q1"].estimate().lower)
        assert math.isfinite(harness.csas["q2"].estimate().lower)

    def test_corrupt_marks_dirty_until_the_next_audit(self):
        schedule = churn_schedule(
            [
                ("send", 0, 1, 0.5),
                ("deliver", 0, 1, 0.5),
                ("corrupt", 1, 0, 0.1),  # scramble q1's agdp
            ]
        )
        harness = ScheduleHarness(
            schedule,
            estimator_factory=lambda p, s: EfficientCSA(
                p, s, reliable=False, self_heal=True
            ),
        )
        harness.run()
        assert harness.dirty == {"q1"}
        # the next event at q1 audits, detects, and rebuilds
        harness.send("q1", "q2")
        harness._note_recovered("q1")
        assert harness.dirty == set()
        assert harness.csas["q1"].recoveries == 1

    def test_corrupt_before_any_state_is_a_noop(self):
        harness = ScheduleHarness(
            churn_schedule([("corrupt", 2, 0, 0.1)]),
            estimator_factory=lambda p, s: EfficientCSA(
                p, s, reliable=False, self_heal=True
            ),
        )
        harness.run()
        assert harness.dirty == set()

    def test_link_down_purges_both_directions(self):
        schedule = churn_schedule(
            [
                ("send", 0, 1, 0.1),
                ("send", 1, 0, 0.1),
                ("link_down", 0, 1, 0.1),
                ("send", 0, 1, 0.1),  # edge is down: no-op
                ("link_up", 0, 1, 0.1),
                ("send", 0, 1, 0.1),  # edge is back: queued
            ]
        )
        harness = ScheduleHarness(schedule)
        harness.run()
        assert len(harness.flagged) == 2
        assert len(harness.in_flight[("q0", "q1")]) == 1

    def test_churn_ops_are_idempotent_noops(self):
        """Re-applying any membership op never raises (shrinking soundness)."""
        schedule = churn_schedule(
            [
                ("leave", 1, 1, 0.1),
                ("leave", 1, 1, 0.1),
                ("rejoin", 1, 1, 0.1),
                ("rejoin", 1, 1, 0.1),
                ("join", 1, 0, 0.1),  # already present: no-op
                ("link_up", 0, 1, 0.1),  # already up: no-op
            ]
        )
        harness = ScheduleHarness(schedule)
        harness.run()
        assert harness.present == {"q0", "q1", "q2"}


class TestRegressions:
    """Minimized divergences found while building the churn layer.

    Both were real estimator bugs in the watermark handoff: a snapshot
    frontier absorbed by the joiner's neighbors let the *sender-side*
    history skip records the receiver-side buffers had never seen, so a
    post-join (or post-recovery) payload to a third party shipped a hole.
    Fixed by re-buffering adopted knowledge for every neighbor; these
    schedules replay the exact minimal shapes.
    """

    def test_join_then_forward_to_a_third_party(self):
        schedule = Schedule.from_json(
            '{"edges": [[0, 1], [0, 2], [0, 3], [1, 4]],'
            ' "initial": [0, 2, 3, 4], "lossy": true,'
            ' "rates": [1.0, 1.0, 1.0, 1.0, 1.0],'
            ' "steps": [["join", 1, 0, 1.0], ["send", 1, 4, 1.0],'
            ' ["deliver", 1, 4, 1.0]], "tamper": null}'
        )
        report = run_differential(schedule, debug_invariants=True)
        assert report.ok, report.describe()

    def test_join_corrupt_recover_then_forward(self):
        schedule = Schedule.from_json(
            '{"edges": [[0, 1], [0, 2], [1, 3], [0, 4], [0, 5]],'
            ' "initial": [0, 2, 3, 5], "lossy": true,'
            ' "rates": [1.0, 1.0, 1.0, 1.0, 1.0, 1.0],'
            ' "steps": [["join", 1, 0, 0.01], ["corrupt", 1, 0, 0.1],'
            ' ["send", 1, 3, 0.01], ["deliver", 1, 3, 0.01]],'
            ' "tamper": null}'
        )
        report = run_differential(schedule, debug_invariants=True)
        assert report.ok, report.describe()
