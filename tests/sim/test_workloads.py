"""Tests for the send-module workloads: each produces its promised pattern."""

import pytest

from repro.core import EfficientCSA
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import (
    AsymmetricPing,
    CristianWorkload,
    NTPWorkload,
    PeriodicGossip,
    RandomTraffic,
    make_cristian_system,
    make_ntp_system,
)


def run_quick(network, workload, duration=60.0, seed=0, **kwargs):
    return run_workload(
        network,
        workload,
        {"efficient": lambda p, s: EfficientCSA(p, s)},
        duration=duration,
        seed=seed,
        **kwargs,
    )


class TestPeriodicGossip:
    def test_all_pairs_fire(self):
        names, links = topologies.ring(4)
        network = standard_network(names, links, seed=0)
        result = run_quick(network, PeriodicGossip(period=5.0, seed=0))
        senders = {
            (r.event.proc, r.event.dest)
            for r in result.trace
            if r.event.is_send
        }
        expected = set()
        for u, v in links:
            expected.add((u, v))
            expected.add((v, u))
        assert senders == expected

    def test_rate_matches_period(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=0)
        result = run_quick(network, PeriodicGossip(period=10.0, jitter=0.0, seed=0))
        sends = sum(1 for r in result.trace if r.event.is_send)
        # 2 directed pairs x ~6 periods in 60s
        assert 8 <= sends <= 16

    def test_until_lt_stops_traffic(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=0, clock_offset_spread=0.0)
        workload = PeriodicGossip(period=5.0, seed=0, until_lt=20.0)
        result = run_quick(network, workload, duration=100.0)
        late_sends = [
            r for r in result.trace if r.event.is_send and r.rt > 40.0
        ]
        assert late_sends == []

    def test_internal_events_generated(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=0)
        workload = PeriodicGossip(period=5.0, seed=0, internal_per_period=3.0)
        result = run_quick(network, workload)
        internals = sum(
            1
            for r in result.trace
            if not r.event.is_send and not r.event.is_receive
        )
        assert internals > 20


class TestRandomTraffic:
    def test_poisson_rate(self):
        names, links = topologies.ring(4)
        network = standard_network(names, links, seed=1)
        result = run_quick(network, RandomTraffic(rate=2.0, seed=1), duration=50.0)
        sends = sum(1 for r in result.trace if r.event.is_send)
        assert 60 <= sends <= 140  # ~100 expected

    def test_internal_prob(self):
        names, links = topologies.ring(4)
        network = standard_network(names, links, seed=1)
        result = run_quick(
            network, RandomTraffic(rate=2.0, seed=1, internal_prob=0.5), duration=50.0
        )
        internals = sum(
            1
            for r in result.trace
            if not r.event.is_send and not r.event.is_receive
        )
        assert internals > 10

    def test_deterministic(self):
        names, links = topologies.ring(4)
        a = run_quick(
            standard_network(names, links, seed=1),
            RandomTraffic(rate=2.0, seed=1),
            duration=30.0,
            seed=9,
        )
        b = run_quick(
            standard_network(names, links, seed=1),
            RandomTraffic(rate=2.0, seed=1),
            duration=30.0,
            seed=9,
        )
        assert len(a.trace) == len(b.trace)
        for ra, rb in zip(a.trace, b.trace):
            assert ra.event.eid == rb.event.eid and ra.rt == rb.rt


class TestAsymmetricPing:
    @pytest.mark.parametrize("burst", [1, 2, 4])
    def test_k2_equals_burst(self, burst):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=2, delay=(0.01, 0.05))
        result = run_quick(
            network,
            AsymmetricPing(burst=burst, gap=0.2, cycle_pause=2.0, seed=2),
            duration=80.0,
        )
        assert result.trace.link_asymmetry() == burst

    def test_replies_flow(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=2)
        result = run_quick(network, AsymmetricPing(burst=2, seed=2), duration=60.0)
        backward = [
            r
            for r in result.trace
            if r.event.is_send and r.event.proc == "p1"
        ]
        assert backward  # p1 replies to p0's bursts


class TestNTPSystem:
    def test_structure(self):
        network, workload = make_ntp_system((2, 3), seed=0)
        assert network.source == "source"
        assert len(network.processors) == 6  # source + 2 + 3
        # level-0 servers poll the source
        assert workload.parents["s0_0"] == ("source",)
        for child in ("s1_0", "s1_1", "s1_2"):
            assert all(p.startswith("s0_") for p in workload.parents[child])

    def test_rpc_pattern(self):
        network, workload = make_ntp_system((2, 3), poll_period=10.0, seed=0)
        result = run_quick(network, workload, duration=120.0)
        # every request gets a response: sends roughly 2x requests
        assert result.trace.link_asymmetry() <= 2
        receives = sum(1 for r in result.trace if r.event.is_receive)
        assert receives > 20

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            make_ntp_system(())
        with pytest.raises(ValueError):
            make_ntp_system((0, 2))


class TestCristianSystem:
    def test_bursts_triggered_by_drift(self):
        network, workload = make_cristian_system(
            3, width_threshold=0.02, seed=3, monitor_channel="efficient"
        )
        result = run_quick(network, workload, duration=200.0)
        assert sum(workload.bursts.values()) > 0
        assert result.trace.link_asymmetry() <= 2

    def test_tight_threshold_causes_more_bursts(self):
        counts = {}
        for threshold in (0.02, 0.5):
            network, workload = make_cristian_system(
                3, width_threshold=threshold, seed=3, monitor_channel="efficient"
            )
            run_quick(network, workload, duration=200.0)
            counts[threshold] = sum(workload.bursts.values())
        assert counts[0.02] > counts[0.5]

    def test_estimates_stay_below_threshold_mostly(self):
        network, workload = make_cristian_system(
            4, width_threshold=0.05, seed=4, monitor_channel="efficient"
        )
        result = run_quick(
            network, workload, duration=300.0, sample_period=10.0
        )
        client_samples = [
            s
            for s in result.samples_for("efficient")
            if s.proc.startswith("client") and s.bound.is_bounded
        ]
        assert client_samples
        tight = sum(1 for s in client_samples if s.width <= 0.15)
        assert tight / len(client_samples) > 0.8


class TestAdaptivePolling:
    def make_run(self, **kwargs):
        from repro.core import TransitSpec
        from repro.sim import LinkConfig, Network, PiecewiseDriftingClock
        from repro.sim.workloads import AdaptivePolling

        clocks = {
            "c0": PiecewiseDriftingClock(5, offset=1.0),
            "c1": PiecewiseDriftingClock(6, offset=-1.0),
        }
        network = Network(
            source="hub",
            clocks=clocks,
            links=[
                LinkConfig("hub", "c0", transit=TransitSpec(0.002, 0.03)),
                LinkConfig("hub", "c1", transit=TransitSpec(0.002, 0.03)),
            ],
        )
        workload = AdaptivePolling(
            servers={"c0": "hub", "c1": "hub"}, seed=3, **kwargs
        )
        return (
            run_workload(
                network,
                workload,
                {"efficient": lambda p, s: EfficientCSA(p, s)},
                duration=300.0,
                seed=3,
                sample_period=20.0,
            ),
            workload,
        )

    def test_interval_backs_off_when_tight(self):
        result, workload = self.make_run(low_water=0.5, high_water=2.0)
        # bounds are far tighter than half a second: intervals must max out
        assert all(
            interval == workload.max_interval
            for interval in workload.intervals.values()
        )

    def test_interval_shrinks_when_loose(self):
        result, workload = self.make_run(
            low_water=1e-6, high_water=1e-5, start_interval=64.0
        )
        # an impossible budget: intervals ride the floor
        assert all(
            interval == workload.min_interval
            for interval in workload.intervals.values()
        )

    def test_sound_under_adaptation(self):
        result, _workload = self.make_run()
        assert result.soundness_violations() == []
