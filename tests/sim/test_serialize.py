"""Round-trip tests for the JSON persistence layer."""

import json
import math

import pytest

from repro.core import SpecificationError, check_execution, external_bounds
from repro.sim.serialize import (
    FORMAT_VERSION,
    dump_run,
    link_stats_from_dicts,
    link_stats_to_dicts,
    load_run,
    load_run_document,
    samples_to_dicts,
    spec_from_dict,
    spec_to_dict,
    trace_from_dict,
    trace_to_dict,
)


class TestTraceRoundTrip:
    def test_events_preserved(self, line4_run):
        data = trace_to_dict(line4_run.trace)
        restored = trace_from_dict(data)
        assert len(restored) == len(line4_run.trace)
        for original, copy in zip(line4_run.trace, restored):
            assert original.event == copy.event
            assert original.rt == copy.rt

    def test_lost_sends_preserved(self):
        from repro.core import EfficientCSA
        from repro.sim import run_workload, standard_network, topologies
        from repro.sim.workloads import PeriodicGossip

        names, links = topologies.ring(4)
        network = standard_network(names, links, seed=5, loss_prob=0.3)
        result = run_workload(
            network,
            PeriodicGossip(period=4.0, seed=5),
            {"efficient": lambda p, s: EfficientCSA(p, s, reliable=False)},
            duration=40.0,
            seed=5,
            loss_detection_delay=2.0,
        )
        restored = trace_from_dict(trace_to_dict(result.trace))
        assert restored.lost_sends == result.trace.lost_sends

    def test_json_serialisable(self, line4_run):
        text = json.dumps(trace_to_dict(line4_run.trace))
        assert json.loads(text)["version"] == FORMAT_VERSION

    def test_wrong_version_rejected(self):
        with pytest.raises(SpecificationError):
            trace_from_dict({"version": 99, "events": []})

    def test_v1_trace_still_loads(self, line4_run):
        """A version-1 archive (no per-link counters) remains loadable."""
        data = trace_to_dict(line4_run.trace)
        data["version"] = 1
        restored = trace_from_dict(data)
        assert len(restored) == len(line4_run.trace)


class TestSpecRoundTrip:
    def test_roundtrip(self, line4_run):
        spec = line4_run.sim.spec
        restored = spec_from_dict(spec_to_dict(spec))
        assert restored.source == spec.source
        assert restored.processors == spec.processors
        for proc in spec.processors:
            assert restored.drift_of(proc) == spec.drift_of(proc)
        for u, v in spec.links:
            assert restored.transit_of(u, v) == spec.transit_of(u, v)
            assert restored.transit_of(v, u) == spec.transit_of(v, u)

    def test_infinite_upper_bound_survives_json(self):
        from repro.core import SystemSpec, TransitSpec

        spec = SystemSpec.build(
            source="s",
            processors=["s", "a"],
            links=[("s", "a")],
            default_transit=TransitSpec(0.5, math.inf),
        )
        text = json.dumps(spec_to_dict(spec))
        restored = spec_from_dict(json.loads(text))
        assert math.isinf(restored.transit_of("s", "a").upper)
        assert restored.transit_of("s", "a").lower == 0.5


class TestWholeRun:
    def test_dump_and_reanalyse(self, line4_run, tmp_path):
        """An archived run supports full offline re-analysis."""
        path = tmp_path / "run.json"
        dump_run(line4_run, str(path))
        spec, trace, samples = load_run(str(path))
        # the archived execution still satisfies its archived spec
        view = trace.global_view()
        assert check_execution(view, spec, trace.real_times, tolerance=1e-6) == []
        # optimal bounds recomputed offline match the live ones
        for proc in view.processors:
            point = view.last_event(proc).eid
            bound = external_bounds(view, spec, point)
            live = line4_run.sim.estimator(proc, "efficient").estimate()
            if bound.is_bounded:
                assert live.lower == pytest.approx(bound.lower, abs=1e-7)
                assert live.upper == pytest.approx(bound.upper, abs=1e-7)
        assert len(samples) == len(line4_run.samples)

    def test_samples_format(self, line4_run):
        rows = samples_to_dicts(line4_run.samples)
        assert rows
        first = rows[0]
        assert set(first) == {"rt", "proc", "channel", "lower", "upper", "truth"}


class TestLinkCounters:
    def test_roundtrip(self, line4_run, tmp_path):
        """v2 archives carry per-directed-link sent/lost/duplicated counters."""
        path = tmp_path / "run.json"
        dump_run(line4_run, str(path))
        _spec, _trace, _samples, links = load_run_document(str(path))
        assert links  # the run sent traffic on every configured link
        for (src, dest), counters in links.items():
            original = line4_run.sim.link_stats[(src, dest)]
            assert counters["sent"] == original.sent
            assert counters["lost"] == original.lost
            assert counters["duplicated"] == original.duplicated
        total_sent = sum(c["sent"] for c in links.values())
        assert total_sent == line4_run.sim.messages_sent

    def test_rows_are_sorted_and_json_safe(self, line4_run):
        rows = link_stats_to_dicts(line4_run.sim.link_stats)
        assert rows == sorted(rows, key=lambda r: (r["src"], r["dest"]))
        restored = link_stats_from_dicts(json.loads(json.dumps(rows)))
        assert set(restored) == set(line4_run.sim.link_stats)

    def test_v1_document_loads_with_empty_links(self, line4_run, tmp_path):
        """Backward compatibility: a v1 archive has no links section."""
        path = tmp_path / "run.json"
        dump_run(line4_run, str(path))
        with open(path) as handle:
            document = json.load(handle)
        document["version"] = 1
        document["trace"]["version"] = 1
        document["spec"]["version"] = 1
        del document["links"]
        v1_path = tmp_path / "run_v1.json"
        with open(v1_path, "w") as handle:
            json.dump(document, handle)
        spec, trace, samples, links = load_run_document(str(v1_path))
        assert links == {}
        assert len(trace) == len(line4_run.trace)
        spec2, trace2, samples2 = load_run(str(v1_path))
        assert len(samples2) == len(samples)
