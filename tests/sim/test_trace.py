"""Tests for execution traces and the empirical complexity oracles."""

import pytest

from repro.core import EventId, SimulationError, UnknownEventError
from repro.sim.trace import ExecutionTrace

from ..conftest import make_event, recv, send


def build_trace(script):
    """script: list of (event, rt)."""
    trace = ExecutionTrace()
    for event, rt in script:
        trace.record(event, rt)
    return trace


class TestRecording:
    def test_chronological_enforced(self):
        trace = ExecutionTrace()
        trace.record(make_event("a", 0, 1.0), 1.0)
        with pytest.raises(SimulationError):
            trace.record(make_event("b", 0, 1.0), 0.5)

    def test_double_record_rejected(self):
        trace = ExecutionTrace()
        event = make_event("a", 0, 1.0)
        trace.record(event, 1.0)
        with pytest.raises(SimulationError):
            trace.record(event, 2.0)

    def test_rt_lookup(self):
        trace = ExecutionTrace()
        trace.record(make_event("a", 0, 1.0), 1.25)
        assert trace.rt_of(EventId("a", 0)) == 1.25
        with pytest.raises(UnknownEventError):
            trace.rt_of(EventId("a", 1))

    def test_lost_requires_traced_send(self):
        trace = ExecutionTrace()
        with pytest.raises(SimulationError):
            trace.record_lost(EventId("a", 0))

    def test_events_of_and_counts(self):
        trace = build_trace(
            [
                (make_event("a", 0, 1.0), 1.0),
                (make_event("b", 0, 1.0), 2.0),
                (make_event("a", 1, 2.0), 3.0),
            ]
        )
        assert trace.event_count() == 3
        assert trace.event_count("a") == 2
        assert [r.event.seq for r in trace.events_of("a")] == [0, 1]


class TestGlobalView:
    def test_global_view_roundtrip(self, line4_run):
        view = line4_run.trace.global_view()
        assert len(view) == len(line4_run.trace)
        # local view from any point is a subset
        point = view.last_event("p2").eid
        local = line4_run.trace.local_view(point)
        assert len(local) <= len(view)
        assert point in local


class TestComplexityOracles:
    def test_relative_system_speed(self):
        # a, b, b, b, a: 3 events between a's two events
        trace = build_trace(
            [
                (make_event("a", 0, 1.0), 1.0),
                (make_event("b", 0, 1.0), 2.0),
                (make_event("b", 1, 2.0), 3.0),
                (make_event("b", 2, 3.0), 4.0),
                (make_event("a", 1, 2.0), 5.0),
            ]
        )
        assert trace.relative_system_speed() == 3

    def test_link_asymmetry_counts_runs(self):
        s1 = send("a", 0, 1.0, dest="b")
        s2 = send("a", 1, 2.0, dest="b")
        s3 = send("a", 2, 3.0, dest="b")
        back = send("b", 0, 4.0, dest="a")
        s4 = send("a", 3, 5.0, dest="b")
        trace = build_trace(
            [(s1, 1.0), (s2, 2.0), (s3, 3.0), (back, 4.0), (s4, 5.0)]
        )
        assert trace.link_asymmetry() == 3

    def test_link_send_speed(self):
        # two sends on link (a,b) with 2 other events between them
        s1 = send("a", 0, 1.0, dest="b")
        s2 = send("a", 1, 4.0, dest="b")
        trace = build_trace(
            [
                (s1, 1.0),
                (make_event("c", 0, 1.0), 2.0),
                (make_event("c", 1, 2.0), 3.0),
                (s2, 4.0),
            ]
        )
        assert trace.link_send_speed() == 2

    def test_max_live_points(self):
        s1 = send("a", 0, 1.0, dest="b")
        s2 = send("a", 1, 2.0, dest="b")
        r1 = recv("b", 0, 3.0, s1)
        r2 = recv("b", 1, 4.0, s2)
        trace = build_trace([(s1, 1.0), (s2, 2.0), (r1, 3.0), (r2, 4.0)])
        # after s2: a#0 and a#1 live (undelivered) -> 2; b adds later
        assert trace.max_live_points() >= 2

    def test_oracles_match_run(self, line4_run):
        trace = line4_run.trace
        assert trace.relative_system_speed() >= 1
        assert trace.link_asymmetry() >= 1
        assert trace.max_live_points() >= 4
