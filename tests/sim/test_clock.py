"""Tests for hardware clock models: invertibility and spec containment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationError
from repro.sim import AffineClock, PerfectClock, PiecewiseDriftingClock


class TestPerfectClock:
    def test_identity(self):
        clock = PerfectClock()
        assert clock.lt(12.5) == 12.5
        assert clock.rt(12.5) == 12.5
        assert clock.advertised.is_drift_free


class TestAffineClock:
    def test_mapping(self):
        clock = AffineClock(offset=5.0, rate=2.0)
        assert clock.lt(3.0) == pytest.approx(11.0)
        assert clock.rt(11.0) == pytest.approx(3.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(SimulationError):
            AffineClock(rate=0.0)

    def test_advertised_contains_true_rate(self):
        clock = AffineClock(rate=1.00004, advertised_ppm=50)
        low, high = clock.advertised.elapsed_real_bounds(1.0)
        true_elapsed_rt = 1.0 / 1.00004
        assert low <= true_elapsed_rt <= high

    def test_rate_outside_advertised_rejected(self):
        with pytest.raises(SimulationError):
            AffineClock(rate=1.001, advertised_ppm=50)

    @given(st.floats(min_value=0, max_value=1e6))
    def test_roundtrip(self, rt):
        clock = AffineClock(offset=-3.0, rate=0.99)
        assert clock.rt(clock.lt(rt)) == pytest.approx(rt, abs=1e-6)


class TestPiecewiseDriftingClock:
    def make(self, seed=0, **kwargs):
        kwargs.setdefault("r_min", 1 - 2e-4)
        kwargs.setdefault("r_max", 1 + 2e-4)
        kwargs.setdefault("mean_segment", 10.0)
        return PiecewiseDriftingClock(seed, **kwargs)

    def test_deterministic(self):
        a, b = self.make(seed=7), self.make(seed=7)
        for rt in (0.0, 5.0, 123.4, 999.9):
            assert a.lt(rt) == b.lt(rt)

    def test_different_seeds_differ(self):
        a, b = self.make(seed=1), self.make(seed=2)
        assert a.lt(500.0) != b.lt(500.0)

    def test_strictly_increasing(self):
        clock = self.make(seed=3)
        previous = clock.lt(0.0)
        for i in range(1, 300):
            current = clock.lt(i * 1.7)
            assert current > previous
            previous = current

    def test_negative_rt_rejected(self):
        with pytest.raises(SimulationError):
            self.make().lt(-1.0)

    def test_lt_before_start_rejected(self):
        clock = self.make(offset=10.0)
        with pytest.raises(SimulationError):
            clock.rt(9.0)

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            PiecewiseDriftingClock(0, r_min=0.0, r_max=1.0)
        with pytest.raises(SimulationError):
            PiecewiseDriftingClock(0, mean_segment=0.0)
        with pytest.raises(SimulationError):
            PiecewiseDriftingClock(0, smoothness=1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0, max_value=2000),
    )
    def test_roundtrip_property(self, seed, rt):
        clock = self.make(seed=seed)
        assert clock.rt(clock.lt(rt)) == pytest.approx(rt, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0, max_value=1000),
        st.floats(min_value=0.01, max_value=500),
    )
    def test_advertised_spec_containment(self, seed, rt0, span):
        """Over any real interval, elapsed local time stays within the
        advertised rate band - the property the optimality proofs need."""
        clock = self.make(seed=seed)
        rt1 = rt0 + span
        delta_lt = clock.lt(rt1) - clock.lt(rt0)
        low, high = clock.advertised.elapsed_real_bounds(delta_lt)
        assert low <= span * (1 + 1e-9) + 1e-9
        assert span <= high * (1 + 1e-9) + 1e-9

    def test_offset_applies(self):
        clock = self.make(seed=4, offset=42.0)
        assert clock.lt(0.0) == pytest.approx(42.0)

    def test_segments_extend_lazily(self):
        clock = self.make(seed=5)
        initial = clock.segment_count()
        clock.lt(10_000.0)
        assert clock.segment_count() > initial

    def test_rate_band_accessor(self):
        clock = self.make(seed=6)
        r_min, r_max = clock.rate_band
        assert r_min < 1 < r_max


class TestSinusoidalDriftClock:
    def make(self, **kwargs):
        from repro.sim import SinusoidalDriftClock

        kwargs.setdefault("amplitude", 1e-4)
        kwargs.setdefault("period", 100.0)
        return SinusoidalDriftClock(**kwargs)

    def test_validation(self):
        from repro.core import SimulationError
        from repro.sim import SinusoidalDriftClock

        with pytest.raises(SimulationError):
            SinusoidalDriftClock(amplitude=2.0, center=1.0)
        with pytest.raises(SimulationError):
            SinusoidalDriftClock(period=0.0)

    def test_offset_at_zero(self):
        clock = self.make(offset=42.0)
        assert clock.lt(0.0) == pytest.approx(42.0)

    def test_strictly_increasing(self):
        clock = self.make()
        previous = clock.lt(0.0)
        for i in range(1, 400):
            value = clock.lt(i * 0.7)
            assert value > previous
            previous = value

    def test_negative_rt_rejected(self):
        from repro.core import SimulationError

        with pytest.raises(SimulationError):
            self.make().lt(-1.0)

    def test_lt_before_start_rejected(self):
        from repro.core import SimulationError

        clock = self.make(offset=5.0)
        with pytest.raises(SimulationError):
            clock.rt(4.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0, max_value=5000),
        st.floats(min_value=1e-6, max_value=5e-4),
        st.floats(min_value=10, max_value=2000),
        st.floats(min_value=0, max_value=6.28),
    )
    def test_roundtrip_property(self, rt, amplitude, period, phase):
        clock = self.make(amplitude=amplitude, period=period, phase=phase)
        assert clock.rt(clock.lt(rt)) == pytest.approx(rt, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0, max_value=2000),
        st.floats(min_value=0.01, max_value=500),
    )
    def test_advertised_spec_containment(self, rt0, span):
        clock = self.make(amplitude=3e-4, period=333.0, phase=1.0)
        rt1 = rt0 + span
        delta_lt = clock.lt(rt1) - clock.lt(rt0)
        low, high = clock.advertised.elapsed_real_bounds(delta_lt)
        assert low <= span * (1 + 1e-9) + 1e-9
        assert span <= high * (1 + 1e-9) + 1e-9

    def test_usable_in_simulation(self):
        """A full run on sinusoidal clocks stays sound."""
        from repro.core import EfficientCSA
        from repro.sim import LinkConfig, Network, SinusoidalDriftClock, run_workload
        from repro.core import TransitSpec
        from repro.sim.workloads import PeriodicGossip

        clocks = {
            "a": SinusoidalDriftClock(amplitude=2e-4, period=60.0, phase=0.5, offset=3.0),
            "b": SinusoidalDriftClock(amplitude=1e-4, period=90.0, phase=2.0, offset=-2.0),
        }
        network = Network(
            source="s",
            clocks=clocks,
            links=[
                LinkConfig("s", "a", transit=TransitSpec(0.01, 0.05)),
                LinkConfig("a", "b", transit=TransitSpec(0.01, 0.05)),
            ],
        )
        result = run_workload(
            network,
            PeriodicGossip(period=4.0, seed=1),
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=120.0,
            seed=1,
            sample_period=10.0,
        )
        assert result.soundness_violations() == []
