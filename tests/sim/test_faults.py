"""Unit tests for the fault-injection subsystem (plans, windows, clocks)."""

import math
import random

import pytest

from repro.core.errors import SimulationError
from repro.sim.clock import ExcursionClock, PerfectClock, PiecewiseDriftingClock
from repro.sim.faults import (
    BurstLoss,
    CrashWindow,
    DelayExcursion,
    DriftExcursion,
    Duplication,
    FaultPlan,
    PartitionWindow,
    RetransmitPolicy,
)
from repro.sim.network import topologies
from repro.sim.runner import standard_network


def small_network(seed=0):
    names, links = topologies.ring(4)
    return standard_network(names, links, seed=seed)


class TestInjectionValidation:
    def test_windows_must_be_ordered(self):
        with pytest.raises(SimulationError):
            CrashWindow("p1", 5.0, 5.0)
        with pytest.raises(SimulationError):
            PartitionWindow("p0", "p1", -1.0, 4.0)
        with pytest.raises(SimulationError):
            DelayExcursion("p0", "p1", 10.0, 5.0)

    def test_probabilities_must_be_valid(self):
        with pytest.raises(SimulationError):
            BurstLoss("p0", "p1", p_enter=1.5)
        with pytest.raises(SimulationError):
            Duplication("p0", "p1", prob=-0.1)

    def test_excursions_must_be_nontrivial(self):
        with pytest.raises(SimulationError):
            DelayExcursion("p0", "p1", 0.0, 5.0, extra=0.0)
        with pytest.raises(SimulationError):
            DriftExcursion("p1", 0.0, 5.0, rate_offset=0.0)

    def test_plan_rejects_unknown_injection_types(self):
        with pytest.raises(SimulationError):
            FaultPlan(seed=0, injections=("not-a-fault",))

    def test_retransmit_policy_validation(self):
        with pytest.raises(SimulationError):
            RetransmitPolicy(timeout=0.0)
        with pytest.raises(SimulationError):
            RetransmitPolicy(backoff=0.5)
        with pytest.raises(SimulationError):
            RetransmitPolicy(max_retries=-1)


class TestBinding:
    def test_unknown_processor_rejected(self):
        plan = FaultPlan(seed=0, injections=(CrashWindow("ghost", 0.0, 1.0),))
        with pytest.raises(SimulationError):
            plan.bind(small_network())

    def test_unknown_link_rejected(self):
        plan = FaultPlan(
            seed=0, injections=(PartitionWindow("p0", "p2", 0.0, 1.0),)
        )  # ring(4) has no chord p0--p2
        with pytest.raises(SimulationError):
            plan.bind(small_network())

    def test_source_drift_excursion_rejected(self):
        plan = FaultPlan(seed=0, injections=(DriftExcursion("p0", 1.0, 2.0),))
        with pytest.raises(SimulationError):
            plan.bind(small_network())

    def test_noop_plan_properties(self):
        plan = FaultPlan(seed=7)
        assert plan.is_noop
        assert not plan.has_out_of_spec()
        active = plan.bind(small_network())
        assert not active.crashed("p1", 10.0)
        assert active.drop_in_transit("p0", "p1", 10.0) is None
        assert not active.duplicated("p0", "p1", 10.0)
        assert active.delay_excursion("p0", "p1", 10.0) is None

    def test_out_of_spec_detection(self):
        plan = FaultPlan(
            seed=0,
            injections=(
                CrashWindow("p1", 0.0, 1.0),
                DelayExcursion("p0", "p1", 3.0, 4.0),
            ),
        )
        assert plan.has_out_of_spec()
        assert plan.out_of_spec_windows() == [(3.0, 4.0)]


class TestCrashWindows:
    def test_crash_half_open_interval(self):
        plan = FaultPlan(seed=0, injections=(CrashWindow("p1", 10.0, 20.0),))
        active = plan.bind(small_network())
        assert not active.crashed("p1", 9.999)
        assert active.crashed("p1", 10.0)
        assert active.crashed("p1", 19.999)
        assert not active.crashed("p1", 20.0)
        assert not active.crashed("p2", 15.0)

    def test_multiple_windows_union(self):
        plan = FaultPlan(
            seed=0,
            injections=(
                CrashWindow("p1", 1.0, 2.0),
                CrashWindow("p1", 5.0, 6.0),
            ),
        )
        active = plan.bind(small_network())
        assert active.crashed("p1", 1.5)
        assert not active.crashed("p1", 3.0)
        assert active.crashed("p1", 5.5)
        assert active.crash_windows("p1") == [(1.0, 2.0), (5.0, 6.0)]


class TestGilbertElliott:
    def test_deterministic_per_seed(self):
        def verdicts(seed):
            plan = FaultPlan(
                seed=seed,
                injections=(
                    BurstLoss("p0", "p1", p_enter=0.3, p_exit=0.3, loss_bad=0.9),
                ),
            )
            active = plan.bind(small_network())
            return [
                active.drop_in_transit("p0", "p1", float(i)) for i in range(200)
            ]

        assert verdicts(5) == verdicts(5)
        assert verdicts(5) != verdicts(6)

    def test_directions_have_independent_state(self):
        plan = FaultPlan(
            seed=1,
            injections=(
                BurstLoss(
                    "p0", "p1", p_enter=1.0, p_exit=0.0, loss_bad=1.0, loss_good=0.0
                ),
            ),
        )
        active = plan.bind(small_network())
        # forward direction transitions to bad on the first message and
        # never exits: everything after message one is dropped
        first = active.drop_in_transit("p0", "p1", 0.0)
        rest = [active.drop_in_transit("p0", "p1", float(i)) for i in range(1, 10)]
        assert all(v == "burst" for v in rest)
        # the reverse direction keeps its own channel state machine
        assert active._burst_bad[("p1", "p0")] is False

    def test_window_gates_the_model(self):
        plan = FaultPlan(
            seed=1,
            injections=(
                BurstLoss(
                    "p0",
                    "p1",
                    p_enter=1.0,
                    p_exit=0.0,
                    loss_bad=1.0,
                    start=10.0,
                    end=20.0,
                ),
            ),
        )
        active = plan.bind(small_network())
        assert active.drop_in_transit("p0", "p1", 5.0) is None
        assert active.drop_in_transit("p0", "p1", 15.0) is not None
        assert active.drop_in_transit("p0", "p1", 25.0) is None


class TestRandomPlans:
    def test_reproducible_and_in_spec(self):
        network = small_network()
        plan_a = FaultPlan.random(3, network, 100.0)
        plan_b = FaultPlan.random(3, network, 100.0)
        assert plan_a == plan_b
        assert not plan_a.has_out_of_spec()
        assert plan_a.of_kind(CrashWindow)
        assert plan_a.of_kind(PartitionWindow)
        assert plan_a.of_kind(BurstLoss)
        assert plan_a.of_kind(Duplication)

    def test_source_spared_by_default(self):
        network = small_network()
        for seed in range(20):
            plan = FaultPlan.random(seed, network, 50.0)
            assert all(
                crash.proc != network.source for crash in plan.of_kind(CrashWindow)
            )

    def test_windows_within_duration(self):
        network = small_network()
        plan = FaultPlan.random(9, network, 50.0)
        for crash in plan.of_kind(CrashWindow):
            assert 0 <= crash.start < crash.end <= 50.0 + 50.0  # capped length


class TestExcursionClock:
    def test_offset_applied_only_in_window(self):
        clock = ExcursionClock(PerfectClock(), [(10.0, 20.0, 0.5)])
        assert clock.lt(5.0) == pytest.approx(5.0)
        assert clock.lt(10.0) == pytest.approx(10.0)
        assert clock.lt(15.0) == pytest.approx(15.0 + 0.5 * 5.0)
        assert clock.lt(20.0) == pytest.approx(20.0 + 0.5 * 10.0)
        # after the window the accumulated offset persists but stops growing
        assert clock.lt(30.0) == pytest.approx(30.0 + 5.0)

    def test_advertised_spec_unchanged(self):
        base = PiecewiseDriftingClock(3)
        clock = ExcursionClock(base, [(1.0, 2.0, 0.3)])
        assert clock.advertised == base.advertised

    def test_inverse_roundtrip(self):
        base = PiecewiseDriftingClock(5)
        clock = ExcursionClock(base, [(5.0, 15.0, 0.4), (30.0, 40.0, -0.3)])
        for rt in (0.0, 4.0, 7.5, 20.0, 35.0, 80.0):
            assert clock.rt(clock.lt(rt)) == pytest.approx(rt, abs=1e-6)

    def test_strictly_increasing_enforced(self):
        # a -1.0 offset would stop a near-unit-rate clock
        with pytest.raises(SimulationError):
            ExcursionClock(PerfectClock(), [(0.0, 10.0, -1.0)])
        # overlapping negatives whose sum kills the rate are also caught
        with pytest.raises(SimulationError):
            ExcursionClock(
                PerfectClock(), [(0.0, 10.0, -0.6), (5.0, 15.0, -0.6)]
            )

    def test_window_validation(self):
        with pytest.raises(SimulationError):
            ExcursionClock(PerfectClock(), [(5.0, 5.0, 0.1)])
        with pytest.raises(SimulationError):
            ExcursionClock(PerfectClock(), [(0.0, 5.0, 0.0)])


class TestEchoDelay:
    def test_echo_trails_by_bounded_fraction(self):
        plan = FaultPlan(seed=21, injections=(Duplication("p0", "p1", prob=1.0),))
        active = plan.bind(small_network())
        for _ in range(100):
            extra = active.echo_delay(0.1)
            assert 0.01 - 1e-12 <= extra <= 0.1 + 1e-12
