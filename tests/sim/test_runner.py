"""Tests for the run orchestration layer."""

import math

import pytest

from repro.core import EfficientCSA
from repro.sim import (
    EstimateSample,
    run_workload,
    standard_network,
    topologies,
)
from repro.sim.runner import RunResult
from repro.sim.workloads import PeriodicGossip


class TestStandardNetwork:
    def test_default_source_is_first(self):
        names, links = topologies.line(3)
        network = standard_network(names, links, seed=0)
        assert network.source == "p0"

    def test_explicit_source(self):
        names, links = topologies.line(3)
        network = standard_network(names, links, source="p1", seed=0)
        assert network.source == "p1"
        assert network.spec.drift_of("p1").is_drift_free

    def test_drift_ppm_applied(self):
        names, links = topologies.line(3)
        network = standard_network(names, links, seed=0, drift_ppm=500)
        drift = network.spec.drift_of("p2")
        assert drift.beta == pytest.approx(1 / (1 - 500e-6))

    def test_loss_prob_applied(self):
        names, links = topologies.line(3)
        network = standard_network(names, links, seed=0, loss_prob=0.2)
        assert all(l.loss_prob == 0.2 for l in network.links.values())


class TestRunWorkload:
    def make_run(self, **kwargs):
        names, links = topologies.line(3)
        network = standard_network(names, links, seed=11)
        return run_workload(
            network,
            PeriodicGossip(period=5.0, seed=11),
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=40.0,
            seed=11,
            **kwargs,
        )

    def test_no_sampling_by_default(self):
        result = self.make_run()
        assert result.samples == []

    def test_sampling_cadence(self):
        result = self.make_run(sample_period=10.0)
        rts = sorted({s.rt for s in result.samples})
        assert rts == pytest.approx([10.0, 20.0, 30.0, 40.0])
        # every processor sampled at every tick
        assert len(result.samples) == 4 * 3

    def test_sample_truth_is_real_time(self):
        result = self.make_run(sample_period=10.0)
        for sample in result.samples:
            assert sample.truth == sample.rt

    def test_samples_for_filters(self):
        result = self.make_run(sample_period=10.0)
        only_p1 = result.samples_for("efficient", proc="p1")
        assert {s.proc for s in only_p1} == {"p1"}
        assert result.samples_for("nope") == []

    def test_mean_width(self):
        result = self.make_run(sample_period=10.0)
        width = result.mean_width("efficient")
        assert 0 <= width < 1.0

    def test_mean_width_empty_channel_inf(self):
        result = self.make_run()
        assert math.isinf(result.mean_width("efficient"))

    def test_auto_confirm_for_lossy_networks(self):
        names, links = topologies.line(3)
        network = standard_network(names, links, seed=11, loss_prob=0.2)
        result = run_workload(
            network,
            PeriodicGossip(period=5.0, seed=11),
            {"efficient": lambda p, s: EfficientCSA(p, s, reliable=False)},
            duration=30.0,
            seed=11,
        )
        assert result.sim.confirm_deliveries

    def test_reliable_network_no_confirms(self):
        result = self.make_run()
        assert not result.sim.confirm_deliveries


class TestEstimateSample:
    def test_soundness_predicate(self):
        from repro.core import ClockBound

        good = EstimateSample(
            rt=5.0, proc="a", channel="x", bound=ClockBound(4.0, 6.0), truth=5.0
        )
        bad = EstimateSample(
            rt=5.0, proc="a", channel="x", bound=ClockBound(6.0, 7.0), truth=5.0
        )
        assert good.sound and not bad.sound
        assert good.width == pytest.approx(2.0)
