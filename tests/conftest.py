"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.core import (
    DriftSpec,
    EfficientCSA,
    Event,
    EventId,
    EventKind,
    FullInformationCSA,
    SystemSpec,
    TransitSpec,
    View,
)
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip, RandomTraffic

# Hypothesis budgets are centralized here so CI tiers pick example counts
# without editing test files: dev (default, fast inner loop), ci (the
# `make fuzz` budget), nightly (`make fuzz-long`, scheduled CI).  Select
# with HYPOTHESIS_PROFILE=<name>; explicit @settings on a test override
# only the fields they name.
_COMMON = dict(
    deadline=None,  # oracle recomputation makes per-example time noisy
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.register_profile("dev", max_examples=20, **_COMMON)
settings.register_profile("ci", max_examples=150, **_COMMON)
settings.register_profile("nightly", max_examples=1000, print_blob=True, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def make_event(proc, seq, lt, kind=EventKind.INTERNAL, dest=None, send_eid=None):
    """Terse event constructor for hand-built views."""
    return Event(eid=EventId(proc, seq), lt=lt, kind=kind, dest=dest, send_eid=send_eid)


def send(proc, seq, lt, dest):
    return make_event(proc, seq, lt, EventKind.SEND, dest=dest)


def recv(proc, seq, lt, send_event):
    return make_event(proc, seq, lt, EventKind.RECEIVE, send_eid=send_event.eid)


def two_proc_spec(
    *,
    drift_ppm: float = 100.0,
    transit=(0.0, 1.0),
    source: str = "src",
    other: str = "a",
) -> SystemSpec:
    return SystemSpec.build(
        source=source,
        processors=[source, other],
        links=[(source, other)],
        default_drift=DriftSpec.from_ppm(drift_ppm),
        default_transit=TransitSpec(transit[0], transit[1]),
    )


def ping_pong_view(spec: SystemSpec | None = None):
    """A canonical tiny view: src sends to a, a replies, src receives.

    Returns ``(view, spec)``; local times are chosen consistently with a
    drift-free interpretation (a's clock offset +3, delays 0.5).
    """
    spec = spec or two_proc_spec()
    view = View()
    s1 = send("src", 0, 10.0, dest="a")
    view.add(s1)
    r1 = recv("a", 0, 13.5, s1)  # a's clock ~ +3, transit 0.5
    view.add(r1)
    s2 = send("a", 1, 14.0, dest="src")
    view.add(s2)
    r2 = recv("src", 1, 11.5, s2)  # transit 0.5 again
    view.add(r2)
    return view, spec


@pytest.fixture
def line4_run():
    """A small deterministic gossip run on a 4-line with both CSAs attached."""
    names, links = topologies.line(4)
    network = standard_network(names, links, seed=42, drift_ppm=200)
    return run_workload(
        network,
        PeriodicGossip(period=5.0, seed=42),
        {
            "efficient": lambda p, s: EfficientCSA(p, s, track_reports=True),
            "full": lambda p, s: FullInformationCSA(p, s),
        },
        duration=60.0,
        seed=42,
        sample_period=6.0,
    )


@pytest.fixture
def ring5_random_run():
    """Random traffic on a 5-ring; stresses interleavings."""
    names, links = topologies.ring(5)
    network = standard_network(names, links, seed=7, drift_ppm=500)
    return run_workload(
        network,
        RandomTraffic(rate=3.0, seed=7, internal_prob=0.15),
        {
            "efficient": lambda p, s: EfficientCSA(p, s),
            "full": lambda p, s: FullInformationCSA(p, s),
        },
        duration=45.0,
        seed=7,
        sample_period=5.0,
    )
