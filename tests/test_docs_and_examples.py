"""Documentation and example scripts actually work.

* the package docstring's doctest runs and passes;
* every example script under examples/ executes cleanly (the quickstart
  at full size, the heavier ones are exercised through their importable
  main() with the module's own defaults only when fast).
"""

import doctest
import pathlib
import subprocess
import sys

import pytest

import repro

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_package_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_estimate_strict():
    from repro.core import EfficientCSA, EstimateUnavailableError
    from tests.conftest import two_proc_spec

    csa = EfficientCSA("a", two_proc_spec())
    with pytest.raises(EstimateUnavailableError):
        csa.estimate_strict()


@pytest.mark.parametrize("script", ["quickstart.py", "lossy_links.py", "calibration.py", "offline_analysis.py", "why_this_wide.py", "live_cluster.py"])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_present():
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "ntp_hierarchy.py",
        "cristian_probes.py",
        "drift_comparison.py",
        "lossy_links.py",
        "fleet_monitor.py",
        "calibration.py",
        "offline_analysis.py",
        "why_this_wide.py",
        "live_cluster.py",
    } <= found
