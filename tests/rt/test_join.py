"""Late-joiner admission over the live runtime: wire, node, cluster.

The runtime counterpart of the simulator's ``LateJoin``: a fresh node
configured with a sponsor sends seq-less ``join`` frames, holds its own
gossip while waiting, and adopts exactly one boot-carrying ``sync``
(the sponsor's post-send snapshot, Lemma 3.1).  The acceptance claims:

* a live cluster admits a late joiner over loopback *and* real UDP, and
  the merged trace still passes the Theorem 2.1 oracle parity check;
* a node that is killed and rejoins re-converges without any honest
  peer landing in a suspicion ledger.
"""

import asyncio
import dataclasses
import math

import pytest

from repro.core.csa import EfficientCSA
from repro.core.events import Event, EventId, EventKind
from repro.core.history import HistoryPayload
from repro.rt.clock import MonotonicClockSource, SkewedClockSource, TimeBase
from repro.rt.cluster import (
    ClusterConfig,
    CrashSchedule,
    JoinSchedule,
    build_spec,
    run_cluster_sync,
)
from repro.rt.node import Node, NodeConfig
from repro.rt.transport import LoopbackTransport
from repro.rt.wire import decode_frame, encode_frame, join_frame, sync_frame
from repro.core.errors import SimulationError
from repro.sim.faults import RetransmitPolicy

from .test_node_cluster import LINE3, _assert_oracle_parity, _line3_config

FAST_RETRANSMIT = RetransmitPolicy(timeout=0.3, backoff=1.5, max_retries=3)

SPEC = build_spec(_line3_config())


def _sponsor_estimator():
    """An ``n1`` estimator that has heard from the source once."""
    sponsor = EfficientCSA("n1", SPEC)
    source = EfficientCSA("n0", SPEC)
    s = Event(EventId("n0", 0), 0.010, EventKind.SEND, dest="n1")
    payload = source.on_send(s)
    sponsor.on_receive(
        Event(EventId("n1", 0), 0.025, EventKind.RECEIVE, send_eid=s.eid), payload
    )
    return sponsor


def _boot_sync_bytes(sponsor, *, mangle_sponsor=None):
    """One boot-carrying sync from ``n1`` to ``n2``, post-send snapshot."""
    seq = sponsor.history.known_seq("n1") + 1
    event = Event(EventId("n1", seq), 0.030 + 0.01 * seq, EventKind.SEND, dest="n2")
    payload = sponsor.on_send(event)
    boot = sponsor.bootstrap_snapshot()
    if mangle_sponsor is not None:
        boot = dataclasses.replace(boot, sponsor=mangle_sponsor)
    return encode_frame(sync_frame(event, payload, boot=boot))


def _joiner(transport, **overrides):
    config = dict(
        proc="n2",
        spec=SPEC,
        sponsor="n1",
        boot_patience=30.0,
        retransmit=FAST_RETRANSMIT,
    )
    config.update(overrides)
    return Node(
        NodeConfig(**config),
        transport,
        clock=MonotonicClockSource(),
        time_base=TimeBase(),
    )


class TestWireCodec:
    def test_join_frame_round_trips(self):
        result = decode_frame(encode_frame(join_frame("n2", "n1")))
        assert result.ok
        assert result.frame.type == "join"
        assert result.frame.src == "n2"
        assert result.frame.dst == "n1"
        assert result.frame.seq is None
        assert result.frame.boot is None

    def test_boot_carrying_sync_round_trips(self):
        sponsor = _sponsor_estimator()
        result = decode_frame(_boot_sync_bytes(sponsor))
        assert result.ok
        frame = result.frame
        assert frame.type == "sync"
        assert frame.boot is not None
        assert frame.boot.sponsor == "n1"
        # the post-send snapshot covers the handshake send itself
        assert frame.boot.frontier().get("n1") == frame.seq

    def test_bad_boot_is_a_structured_attributed_error(self):
        # a sync whose boot section is garbage: strict decode must flag
        # it and still attribute the claimed sender
        import json
        import struct

        from repro.rt.wire import MAGIC, WIRE_VERSION

        body = json.dumps(
            {
                "type": "sync", "src": "n1", "dst": "n2", "seq": 0, "lt": 0.5,
                "payload": {"records": []}, "boot": [1, 2, 3],
            }
        ).encode()
        result = decode_frame(struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(body)) + body)
        assert result.error is not None
        assert result.error.code == "bad-boot"
        assert result.error.src == "n1"


class TestSponsorSide:
    def test_join_request_is_answered_with_a_boot_sync(self):
        async def scenario():
            transport = LoopbackTransport()
            await transport.start()
            captured = []
            transport.register("n2", captured.append)
            sponsor = Node(
                NodeConfig(proc="n1", spec=SPEC, retransmit=FAST_RETRANSMIT),
                transport,
                clock=MonotonicClockSource(),
                time_base=TimeBase(),
            )
            transport.register("n1", sponsor._on_datagram)
            sponsor._running = True  # receive path only; no gossip task
            sponsor._on_datagram(encode_frame(join_frame("n2", "n1")))
            await asyncio.sleep(0)  # let call_soon deliver
            for _dest, _eid, _attempt, timer in sponsor._pending.values():
                timer.cancel()
            return sponsor, captured

        sponsor, captured = asyncio.run(scenario())
        assert sponsor.stats["n2"].join_requests == 1
        assert sponsor.boot_sent == 1
        boots = [
            f for f in (decode_frame(d).frame for d in captured)
            if f is not None and f.type == "sync" and f.boot is not None
        ]
        assert len(boots) == 1
        assert boots[0].boot.sponsor == "n1"


class TestJoinerSide:
    def _scenario(self, body):
        async def run():
            transport = LoopbackTransport()  # never started: sends vanish
            node = _joiner(transport)
            await node.start()
            try:
                body(node)
            finally:
                await node.stop()
            return node

        return asyncio.run(run())

    def test_fresh_joiner_adopts_exactly_once(self):
        sponsor = _sponsor_estimator()
        first = _boot_sync_bytes(sponsor)
        second = _boot_sync_bytes(sponsor)

        def body(node):
            assert node._awaiting_boot()
            node._on_datagram(first)
            assert node.boot_adopted
            assert not node._awaiting_boot()  # no longer fresh
            node._on_datagram(second)  # a duplicate answer: plain sync

        node = self._scenario(body)
        assert node.stats["n1"].received == 2
        assert node.estimator_errors == 0
        # exactly one adoption: the second boot was refused by freshness
        assert node.snapshot().bootstrapped

    def test_boot_must_name_its_carrier(self):
        sponsor = _sponsor_estimator()
        forged = _boot_sync_bytes(sponsor, mangle_sponsor="n0")

        def body(node):
            node._on_datagram(forged)
            assert not node.boot_adopted

        node = self._scenario(body)
        assert node.stats["n1"].rejected_frames == 1

    def test_plain_syncs_are_deferred_while_awaiting_boot(self):
        source = EfficientCSA("n1", SPEC)
        event = Event(EventId("n1", 0), 0.010, EventKind.SEND, dest="n2")
        plain = encode_frame(sync_frame(event, source.on_send(event)))

        def body(node):
            node._on_datagram(plain)
            # dropped unacked, before the estimator: freshness survives
            assert node.boot_deferred == 1
            assert node.stats["n1"].received == 0
            assert node.estimator.is_fresh

        self._scenario(body)

    def test_past_patience_the_node_joins_cold(self):
        source = EfficientCSA("n1", SPEC)
        event = Event(EventId("n1", 0), 0.010, EventKind.SEND, dest="n2")
        plain = encode_frame(sync_frame(event, source.on_send(event)))

        async def run():
            transport = LoopbackTransport()
            node = _joiner(transport, boot_patience=0.0)  # no patience at all
            await node.start()
            try:
                assert not node._awaiting_boot()
                node._on_datagram(plain)
            finally:
                await node.stop()
            return node

        node = asyncio.run(run())
        assert node.stats["n1"].received == 1  # cold but learning
        assert not node.boot_adopted

    def test_sponsor_must_be_a_neighbor(self):
        with pytest.raises(SimulationError, match="neighbor"):
            NodeConfig(proc="n2", spec=SPEC, sponsor="n0")


class TestClusterJoin:
    def test_loopback_cluster_admits_a_late_joiner(self):
        join_at = 0.5
        config = _line3_config(
            duration=2.0,
            joins=(JoinSchedule("n2", join_at, sponsor="n1"),),
        )
        result = run_cluster_sync(config)
        assert result.soundness_violations() == []
        assert result.nodes["n2"].bootstrapped
        assert result.nodes["n2"].converged
        # held out means held out: no sample of the joiner precedes the join
        assert all(s.rt >= join_at for s in result.samples_for("n2"))
        lag, examined = result.reconvergence_after(join_at, "n2")
        assert math.isfinite(lag)
        assert examined > 0
        _assert_oracle_parity(
            result.spec,
            result.trace,
            {proc: stats.event_bound for proc, stats in result.nodes.items()},
        )

    def test_udp_cluster_admits_a_late_joiner(self):
        """Acceptance: a live UDP cluster admits a late daemon and the
        merged trace still passes Theorem 2.1 oracle parity."""
        config = _line3_config(
            transport="udp",
            duration=2.4,
            gossip_period=0.1,
            joins=(JoinSchedule("n2", 0.6, sponsor="n1"),),
        )
        result = run_cluster_sync(config)
        assert result.soundness_violations() == []
        assert result.nodes["n2"].bootstrapped
        assert result.nodes["n2"].converged
        _assert_oracle_parity(
            result.spec,
            result.trace,
            {proc: stats.event_bound for proc, stats in result.nodes.items()},
        )

    def test_killed_and_rejoined_node_reconverges_without_evictions(self):
        """Acceptance: kill the joiner after it bootstrapped; on restart it
        resumes durable state, re-converges, and no honest peer is ever
        suspected - churn must not look like Byzantine behaviour."""
        restart_at = 1.5
        config = _line3_config(
            duration=3.0,
            joins=(JoinSchedule("n2", 0.4, sponsor="n1"),),
            crashes=(CrashSchedule("n2", stop_at=1.0, restart_at=restart_at),),
        )
        result = run_cluster_sync(config)
        assert result.soundness_violations() == []
        assert result.nodes["n2"].bootstrapped  # from the pre-kill join
        assert result.nodes["n2"].converged  # re-converged after restart
        lag, _examined = result.reconvergence_after(restart_at, "n2")
        assert math.isfinite(lag)
        for proc, stats in result.nodes.items():
            assert stats.suspected == (), f"{proc} suspects {stats.suspected}"
        # survivors stayed converged throughout
        assert result.nodes["n0"].converged
        assert result.nodes["n1"].converged

    def test_join_schedule_validation(self):
        with pytest.raises(SimulationError, match="neighbor"):
            _line3_config(joins=(JoinSchedule("n2", 0.5, sponsor="n0"),))
        with pytest.raises(SimulationError, match="source"):
            _line3_config(joins=(JoinSchedule("n0", 0.5, sponsor="n1"),))
        with pytest.raises(SimulationError, match="two join"):
            _line3_config(
                joins=(
                    JoinSchedule("n2", 0.5, sponsor="n1"),
                    JoinSchedule("n2", 0.9, sponsor="n1"),
                )
            )
