"""Serving-tier wire frames: round trips, rejection paths, garbage fuzz.

The probe/reply/shed extension keeps the codec's core contract: decode
never raises on any byte string, malformed frames become structured
``WireError``\\ s attributed to the claimed sender, and constructors
refuse to emit locally what the decoder would reject remotely (an
unbounded reply, a negative retry hint).
"""

import json
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ProtocolError
from repro.core.intervals import ClockBound
from repro.rt.wire import (
    FRAME_TYPES,
    MAGIC,
    MAX_BODY_BYTES,
    SERVE_FRAME_TYPES,
    WIRE_VERSION,
    ack_frame,
    decode_frame,
    encode_frame,
    hello_frame,
    probe_frame,
    reply_frame,
    shed_frame,
)


def _reframe(data, mutate):
    """Decode a frame's body, mutate the dict, re-frame the bytes."""
    body = json.loads(data[7:])
    mutate(body)
    encoded = json.dumps(body).encode()
    return struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(encoded)) + encoded


def _reply_bytes(**overrides):
    kwargs = dict(degraded=False, age=0.0)
    kwargs.update(overrides)
    return encode_frame(
        reply_frame("n1!serve", "c0", 7, ClockBound(1.25, 1.75), **kwargs)
    )


class TestServeRoundTrips:
    def test_probe(self):
        result = decode_frame(encode_frame(probe_frame("c0", "n1!serve", 42)))
        assert result.ok
        frame = result.frame
        assert (frame.type, frame.src, frame.dst, frame.nonce) == (
            "probe", "c0", "n1!serve", 42,
        )

    def test_reply(self):
        result = decode_frame(_reply_bytes(degraded=True, age=0.5))
        assert result.ok
        frame = result.frame
        assert frame.type == "reply"
        assert frame.nonce == 7
        assert frame.bound == ClockBound(1.25, 1.75)
        assert frame.degraded is True
        assert frame.age == pytest.approx(0.5)

    def test_shed(self):
        data = encode_frame(
            shed_frame("n1!serve", "c0", 9, retry_after=0.25, reason="queue")
        )
        frame = decode_frame(data).frame
        assert (frame.type, frame.nonce) == ("shed", 9)
        assert frame.retry_after == pytest.approx(0.25)
        assert frame.reason == "queue"

    def test_point_interval_reply(self):
        frame = decode_frame(
            encode_frame(reply_frame("s", "c", 0, ClockBound(2.0, 2.0)))
        ).frame
        assert frame.bound.lower == frame.bound.upper == 2.0

    def test_serve_types_are_registered(self):
        assert set(SERVE_FRAME_TYPES) <= set(FRAME_TYPES)


class TestServeConstructorValidation:
    """Never emit locally what a peer's decoder would reject."""

    def test_reply_refuses_unbounded(self):
        for bad in (ClockBound.unbounded(), ClockBound(1.0, math.inf)):
            with pytest.raises(ProtocolError):
                reply_frame("s", "c", 0, bad)

    def test_reply_refuses_negative_age(self):
        with pytest.raises(ProtocolError):
            reply_frame("s", "c", 0, ClockBound(1.0, 2.0), age=-0.1)

    def test_shed_refuses_bad_retry_after(self):
        for bad in (-0.5, math.inf, math.nan):
            with pytest.raises(ProtocolError):
                shed_frame("s", "c", 0, retry_after=bad)

    def test_shed_refuses_empty_reason(self):
        with pytest.raises(ProtocolError):
            shed_frame("s", "c", 0, retry_after=0.1, reason="")

    def test_bad_nonces(self):
        for bad in (-1, True, 1.5, "seven", None):
            with pytest.raises(ProtocolError):
                probe_frame("c", "s", bad)


class TestServeRejectionPaths:
    """Tampered serve frames decode to attributed WireErrors."""

    def decode_error(self, data):
        result = decode_frame(data)
        assert not result.ok and result.frame is None
        return result.error

    def test_probe_missing_nonce(self):
        data = encode_frame(probe_frame("c0", "s", 1))
        error = self.decode_error(_reframe(data, lambda b: b.pop("nonce")))
        assert error.code == "bad-frame"
        assert error.src == "c0"  # attribution survives tampering

    def test_bad_nonce_values(self):
        data = encode_frame(probe_frame("c0", "s", 1))
        for bad in (-1, True, 1.5, "x", None):
            error = self.decode_error(
                _reframe(data, lambda b, v=bad: b.__setitem__("nonce", v))
            )
            assert error.code == "bad-frame"

    def test_reply_inverted_interval(self):
        error = self.decode_error(
            _reframe(_reply_bytes(), lambda b: b.__setitem__("lower", 99.0))
        )
        assert error.code == "bad-frame"
        assert error.src == "n1!serve"

    def test_reply_non_finite_endpoints(self):
        for key, bad in (("lower", "1e999"), ("upper", "nan")):
            # json.loads accepts bare nan/inf; the decoder must not
            body = json.loads(_reply_bytes()[7:])
            body[key] = float(bad)
            encoded = json.dumps(body, allow_nan=True).encode()
            data = struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(encoded)) + encoded
            assert self.decode_error(data).code == "bad-frame"

    def test_reply_missing_bound(self):
        for key in ("lower", "upper"):
            error = self.decode_error(
                _reframe(_reply_bytes(), lambda b, k=key: b.pop(k))
            )
            assert error.code == "bad-frame"

    def test_reply_bad_degraded_and_age(self):
        for mutate in (
            lambda b: b.__setitem__("degraded", "yes"),
            lambda b: b.__setitem__("age", -1.0),
            lambda b: b.__setitem__("age", "old"),
        ):
            assert self.decode_error(_reframe(_reply_bytes(), mutate)).code == "bad-frame"

    def test_shed_bad_retry_and_reason(self):
        data = encode_frame(shed_frame("s", "c", 2, retry_after=0.5))
        for mutate in (
            lambda b: b.pop("retry_after"),
            lambda b: b.__setitem__("retry_after", -0.1),
            lambda b: b.__setitem__("reason", ""),
            lambda b: b.__setitem__("reason", 7),
        ):
            assert self.decode_error(_reframe(data, mutate)).code == "bad-frame"

    def test_shed_missing_reason_defaults_to_overload(self):
        # reason is advisory; an absent one reads as the generic verdict
        data = encode_frame(shed_frame("s", "c", 2, retry_after=0.5))
        result = decode_frame(_reframe(data, lambda b: b.pop("reason")))
        assert result.ok and result.frame.reason == "overload"

    def test_old_frame_types_unaffected(self):
        # the additive extension leaves existing frames untouched
        assert decode_frame(encode_frame(hello_frame("a", "b"))).ok
        assert decode_frame(encode_frame(ack_frame("b", "a", 3))).ok


def _valid_corpus():
    return [
        encode_frame(probe_frame("c0", "n0!serve", 5)),
        _reply_bytes(),
        _reply_bytes(degraded=True, age=2.5),
        encode_frame(shed_frame("n0!serve", "c0", 5, retry_after=0.1, reason="overload")),
        encode_frame(hello_frame("a", "b")),
        encode_frame(ack_frame("b", "a", 12)),
    ]


class TestWireGarbageFuzz:
    """decode_frame over hostile bytes: never raise, always classify."""

    @given(st.binary(max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_random_bytes_never_raise(self, data):
        result = decode_frame(data)
        assert result.ok == (result.error is None)
        if not result.ok:
            assert result.error.code

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_truncations_never_raise(self, data):
        corpus = _valid_corpus()
        frame_bytes = data.draw(st.sampled_from(corpus))
        cut = data.draw(st.integers(min_value=0, max_value=len(frame_bytes)))
        result = decode_frame(frame_bytes[:cut])
        if cut < len(frame_bytes):
            assert not result.ok
            assert result.error.code in ("short-frame", "length-mismatch", "oversized")

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_single_byte_corruption_never_raises(self, data):
        corpus = _valid_corpus()
        frame_bytes = bytearray(data.draw(st.sampled_from(corpus)))
        index = data.draw(st.integers(min_value=0, max_value=len(frame_bytes) - 1))
        value = data.draw(st.integers(min_value=0, max_value=255))
        frame_bytes[index] = value
        result = decode_frame(bytes(frame_bytes))
        assert result.ok == (result.error is None)

    def test_oversized_serve_frame_declared_length(self):
        header = struct.pack(">2sBI", MAGIC, WIRE_VERSION, MAX_BODY_BYTES + 1)
        result = decode_frame(header + b"x" * 10)
        assert result.error.code == "oversized"

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_garbage_after_valid_header_never_raises(self, tail):
        header = struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(tail))
        result = decode_frame(header + tail)
        assert result.ok == (result.error is None)


class TestClockHygiene:
    """The serving tier never consults the wall clock."""

    def test_no_wall_clock_reads(self):
        import ast
        import inspect

        from repro.rt import cli, client, loadgen, serve, serve_cli

        banned = {("time", "time"), ("datetime", "now"), ("datetime", "utcnow")}
        for module in (serve, client, loadgen, cli, serve_cli):
            tree = ast.parse(inspect.getsource(module))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                    pair = (func.value.id, func.attr)
                    assert pair not in banned, (
                        f"{module.__name__} line {node.lineno} reads the wall clock"
                    )
