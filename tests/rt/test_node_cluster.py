"""Node daemons and the cluster harness, over loopback and real UDP.

The load-bearing assertions:

* live clusters converge to sound finite two-sided bounds;
* the merged trace + final estimates pass the *same* independent oracle
  checks (soundness and Theorem 2.1 optimality) as a simulator run of
  the same topology - the runtime/simulator parity contract;
* crash-and-restart keeps survivors sound and lets the restarted node
  re-converge (fail-stop with durable state, PR 1 semantics);
* an archived live run loads through repro.sim.serialize.load_run;
* injected loss triggers the ack-timeout/retransmission loop, and wire
  garbage lands in the estimator's suspicion ledger.

All async tests run via asyncio.run inside plain pytest functions
(pytest-asyncio is deliberately not a dependency).  Durations are kept
short; periods are scaled down to match.
"""

import asyncio
import math

import pytest

from repro.core.csa import EfficientCSA
from repro.core.errors import SimulationError
from repro.rt.clock import MonotonicClockSource, SkewedClockSource, TimeBase
from repro.rt.cluster import (
    ClusterConfig,
    CrashSchedule,
    build_spec,
    dump_rt_run,
    run_cluster_sync,
)
from repro.rt.node import Node, NodeConfig
from repro.rt.transport import LoopbackTransport
from repro.rt.wire import encode_frame, sync_frame
from repro.core.events import Event, EventId, EventKind
from repro.core.history import HistoryPayload
from repro.sim.faults import FaultPlan, PartitionWindow, RetransmitPolicy
from repro.sim.runner import run_workload, standard_network
from repro.sim.serialize import load_run, load_run_document
from repro.sim.workloads import PeriodicGossip
from repro.sim import topologies
from repro.testing.oracle import oracle_causal_past, oracle_external_bounds


LINE3 = (("n0", "n1"), ("n1", "n2"))

FAST_RETRANSMIT = RetransmitPolicy(timeout=0.3, backoff=1.5, max_retries=3)


def _line3_config(**overrides):
    defaults = dict(
        processors=("n0", "n1", "n2"),
        links=LINE3,
        duration=1.5,
        gossip_period=0.05,
        sample_period=0.15,
        clocks={
            "n1": SkewedClockSource(1.0 + 100e-6),
            "n2": SkewedClockSource(1.0 - 150e-6, offset=0.25),
        },
        retransmit=FAST_RETRANSMIT,
        seed=42,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _assert_oracle_parity(spec, trace, final_bounds, *, tol=1e-6):
    """Independent soundness + optimality verdicts on one finished run.

    For each processor's last event: the oracle interval over its causal
    past must contain the true source time (soundness), and the live
    estimator's own final interval must match the oracle's (Theorem 2.1
    optimality - the algorithm extracts everything its view contains).
    """
    events = [record.event for record in trace]
    rt_of = {record.event.eid: record.rt for record in trace}
    last = {}
    for event in events:
        prev = last.get(event.proc)
        if prev is None or event.seq > prev.seq:
            last[event.proc] = event
    for proc, event in last.items():
        past = oracle_causal_past(events, event.eid)
        oracle = oracle_external_bounds(past, spec, event.eid)
        assert oracle.contains(rt_of[event.eid], tolerance=tol), (
            f"oracle bound {oracle} at {event.eid} excludes rt {rt_of[event.eid]}"
        )
        if proc in final_bounds:
            ours = final_bounds[proc]
            assert ours.lower == pytest.approx(oracle.lower, abs=tol)
            if math.isinf(oracle.upper):
                assert math.isinf(ours.upper)
            else:
                assert ours.upper == pytest.approx(oracle.upper, abs=tol)


class TestLoopbackCluster:
    def test_converges_sound_and_oracle_optimal(self):
        result = run_cluster_sync(_line3_config())
        assert result.soundness_violations() == []
        for proc, stats in result.nodes.items():
            assert stats.converged, f"{proc} never reached finite bounds"
            assert stats.suspected == ()
        assert result.messages_sent > 0
        assert len(result.trace) > 0
        # estimator finals == oracle bounds at each node's last event
        _assert_oracle_parity(
            result.spec,
            result.trace,
            {proc: stats.event_bound for proc, stats in result.nodes.items()},
        )

    def test_simulator_run_passes_the_same_oracle_checks(self):
        """The parity counterpart: same topology/shape through the sim engine."""
        names, links = topologies.line(3)
        network = standard_network(names, links, seed=42, drift_ppm=150)
        result = run_workload(
            network,
            PeriodicGossip(period=2.0, seed=42),
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=30.0,
            seed=42,
            sample_period=10.0,
        )
        assert result.soundness_violations() == []
        finals = {
            proc: result.sim.estimator(proc, "efficient").estimate()
            for proc in names
        }
        _assert_oracle_parity(result.sim.spec, result.trace, finals, tol=1e-9)

    def test_source_clock_must_be_monotonic(self):
        with pytest.raises(SimulationError):
            _line3_config(clocks={"n0": SkewedClockSource(1.001)})

    def test_dump_round_trips_through_load_run(self, tmp_path):
        result = run_cluster_sync(_line3_config(duration=1.0))
        path = str(tmp_path / "live.json")
        dump_rt_run(result, path)
        spec, trace, samples = load_run(path)
        assert spec == result.spec
        assert len(trace) == len(result.trace)
        assert trace.lost_sends == result.trace.lost_sends
        assert len(samples) == len(result.samples)
        _spec, _trace, _samples, links = load_run_document(path)
        assert sum(row["sent"] for row in links.values()) == result.messages_sent

    def test_crash_and_restart(self):
        config = _line3_config(
            duration=2.4,
            crashes=(CrashSchedule("n2", stop_at=0.7, restart_at=1.3),),
        )
        result = run_cluster_sync(config)
        # survivors' samples never exclude the truth, before/during/after
        assert result.soundness_violations() == []
        # no samples are taken from a node while it is down
        down = [s for s in result.samples if s.proc == "n2" and 0.75 < s.rt < 1.25]
        assert down == []
        # the restarted node resumed its durable state and re-converged
        assert result.nodes["n2"].converged
        assert result.nodes["n1"].converged

    def test_partition_triggers_retransmission_and_stays_sound(self):
        plan = FaultPlan(seed=5, injections=(PartitionWindow("n1", "n2", 0.3, 0.8),))
        result = run_cluster_sync(_line3_config(duration=2.0, faults=plan))
        assert result.soundness_violations() == []
        n1 = result.nodes["n1"].links["n2"]
        n2 = result.nodes["n2"].links["n1"]
        assert n1.losses_signaled + n2.losses_signaled > 0
        assert n1.retransmissions + n2.retransmissions > 0
        assert result.nodes["n2"].converged  # recovered after the window


class TestUDPCluster:
    def test_converges_over_real_sockets(self):
        result = run_cluster_sync(
            _line3_config(transport="udp", duration=2.0, gossip_period=0.1)
        )
        assert result.soundness_violations() == []
        for proc, stats in result.nodes.items():
            assert stats.converged, f"{proc} unbounded over UDP"
        _assert_oracle_parity(
            result.spec,
            result.trace,
            {proc: stats.event_bound for proc, stats in result.nodes.items()},
        )


class TestNodeUnit:
    """Receive-path unit behaviour, no event loop needed."""

    def _node(self):
        config = _line3_config()
        spec = build_spec(config)
        transport = LoopbackTransport()  # not started: sends are no-ops
        return Node(
            NodeConfig(proc="n1", spec=spec, retransmit=FAST_RETRANSMIT),
            transport,
            clock=MonotonicClockSource(),
            time_base=TimeBase(),
        )

    @staticmethod
    def _sync_bytes(src, dst, seq, lt):
        event = Event(EventId(src, seq), lt, EventKind.SEND, dest=dst)
        payload = HistoryPayload(records=(event,))
        return encode_frame(sync_frame(event, payload))

    def test_duplicate_discarded_before_estimator(self):
        node = self._node()
        data = self._sync_bytes("n0", "n1", 0, 0.001)
        node._on_datagram(data)
        node._on_datagram(data)
        stats = node.stats["n0"]
        assert stats.received == 1
        assert stats.duplicates == 1
        # exactly one receive event was created for the two datagrams
        receives = [e for e, _rt in node.trace_log if e.is_receive]
        assert len(receives) == 1

    def test_garbage_bytes_feed_suspicion_ledger(self):
        node = self._node()
        # valid envelope, tampered payload: attributable to n0
        import json, struct
        from repro.rt.wire import MAGIC, WIRE_VERSION

        body = json.dumps({
            "type": "sync", "src": "n0", "dst": "n1", "seq": 0, "lt": 0.5,
            "payload": {"records": [{"proc": "n0", "seq": 0,
                                     "lt": 0.5, "kind": "teleport"}]},
        }).encode()
        node._on_datagram(struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(body)) + body)
        assert node.stats["n0"].decode_errors == 1
        assert [f.kind for f in node.estimator.validation_failures] == ["malformed"]
        assert node.estimator.validation_failures[0].accused == ("n0",)

    def test_unattributable_garbage_only_counted(self):
        node = self._node()
        node._on_datagram(b"\x00" * 3)
        node._on_datagram(b"not a frame at all")
        assert node.unattributed_errors == 2
        assert node.estimator.validation_failures == []

    def test_frames_from_non_neighbors_rejected(self):
        node = self._node()
        # n2 is not adjacent to n1... it is, in a line.  n0<->n2 are not
        # adjacent, so impersonate a frame addressed to the wrong node.
        data = self._sync_bytes("n0", "n2", 0, 0.001)
        node._on_datagram(data)
        assert node.stats["n0"].received == 0
        assert node.stats["n0"].rejected_frames == 1
