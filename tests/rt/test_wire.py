"""Wire codec: round trips and, more importantly, the rejection paths.

Every byte string off a socket is adversarial input; decode_frame must
map malformed input - truncated, wrong magic/version, oversized,
tampered, non-JSON - to a structured WireError without ever raising, and
a tampered sync payload must land in the estimator's suspicion ledger
exactly like sim-path tampering does.
"""

import json

import pytest
from hypothesis import given

from repro.core.csa import EfficientCSA
from repro.core.csa_base import SuspicionPolicy
from repro.core.errors import ProtocolError
from repro.core.events import Event, EventId, EventKind
from repro.core.history import HistoryPayload
from repro.core.specs import SystemSpec
from repro.rt.wire import (
    MAGIC,
    MAX_BODY_BYTES,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    ack_frame,
    decode_frame,
    encode_frame,
    hello_frame,
    sync_frame,
)
from repro.testing.strategies import history_payloads


def _send_event(seq=0, lt=1.0, src="a", dst="b"):
    return Event(EventId(src, seq), lt, EventKind.SEND, dest=dst)


def _sync_bytes(payload=None, **kwargs):
    payload = payload if payload is not None else HistoryPayload(records=())
    return encode_frame(sync_frame(_send_event(**kwargs), payload))


class TestRoundTrip:
    def test_hello(self):
        result = decode_frame(encode_frame(hello_frame("a", "b")))
        assert result.ok and result.error is None
        assert result.frame.type == "hello"
        assert (result.frame.src, result.frame.dst) == ("a", "b")
        assert result.frame.meta["wire"] == WIRE_VERSION

    def test_ack(self):
        result = decode_frame(encode_frame(ack_frame("b", "a", 17)))
        assert result.ok
        assert result.frame.type == "ack"
        assert result.frame.seq == 17
        assert result.frame.payload is None

    def test_sync_carries_event_and_payload(self):
        send = _send_event(seq=3, lt=2.5)
        payload = HistoryPayload(records=(send,), loss_flags=(EventId("a", 1),))
        result = decode_frame(encode_frame(sync_frame(send, payload)))
        assert result.ok
        frame = result.frame
        assert (frame.type, frame.src, frame.dst) == ("sync", "a", "b")
        assert (frame.seq, frame.lt) == (3, 2.5)
        assert frame.payload == payload

    @given(history_payloads())
    def test_sync_round_trips_any_payload(self, payload):
        frame = decode_frame(_sync_bytes(payload)).frame
        assert frame is not None and frame.payload == payload

    def test_sync_frame_rejects_non_send_events(self):
        event = Event(EventId("a", 0), 1.0, EventKind.INTERNAL)
        with pytest.raises(ProtocolError):
            sync_frame(event, HistoryPayload(records=()))


class TestRejectionPaths:
    """decode_frame never raises; each malformation has a stable code."""

    def decode(self, data):
        result = decode_frame(data)
        assert not result.ok and result.frame is None
        return result.error

    def test_empty_and_short(self):
        assert self.decode(b"").code == "short-frame"
        assert self.decode(b"RS\x01").code == "short-frame"

    def test_bad_magic(self):
        data = bytearray(_sync_bytes())
        data[0:2] = b"XX"
        assert self.decode(bytes(data)).code == "bad-magic"

    def test_bad_version(self):
        data = bytearray(_sync_bytes())
        data[2] = 99  # far past both the JSON and binary wire versions
        error = self.decode(bytes(data))
        assert error.code == "bad-version"
        assert str(WIRE_VERSION_BINARY) in error.detail

    def test_truncated_body(self):
        data = _sync_bytes()
        assert self.decode(data[:-5]).code == "length-mismatch"

    def test_trailing_garbage(self):
        assert self.decode(_sync_bytes() + b"xx").code == "length-mismatch"

    def test_oversized_declared_length(self):
        import struct

        header = struct.pack(">2sBI", MAGIC, WIRE_VERSION, MAX_BODY_BYTES + 1)
        assert self.decode(header).code == "oversized"

    def test_oversized_encode_raises_locally(self):
        records = tuple(
            Event(EventId("a", i), float(i), EventKind.SEND, dest="b")
            for i in range(3000)
        )
        with pytest.raises(ProtocolError):
            encode_frame(sync_frame(_send_event(seq=3000, lt=4000.0),
                                    HistoryPayload(records=records)))

    def test_non_json_body(self):
        import struct

        body = b"\xff\xfe not json"
        header = struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(body))
        assert self.decode(header + body).code == "bad-json"

    def test_non_object_body(self):
        import struct

        body = json.dumps([1, 2, 3]).encode()
        header = struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(body))
        assert self.decode(header + body).code == "bad-frame"

    @staticmethod
    def _reframe(mutate):
        """Decode a good sync body, mutate the dict, re-frame the bytes."""
        import struct

        data = _sync_bytes()
        body = json.loads(data[7:])
        mutate(body)
        encoded = json.dumps(body).encode()
        return struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(encoded)) + encoded

    def test_unknown_type(self):
        error = self.decode(self._reframe(lambda b: b.__setitem__("type", "warp")))
        assert error.code == "bad-frame"
        assert error.src == "a"  # envelope attribution survives

    def test_missing_dst(self):
        error = self.decode(self._reframe(lambda b: b.pop("dst")))
        assert error.code == "bad-frame"

    def test_bad_seq(self):
        for bad in (-1, "three", None, True):
            error = self.decode(self._reframe(lambda b: b.__setitem__("seq", bad)))
            assert error.code == "bad-frame"
            assert error.src == "a"

    def test_bad_lt(self):
        error = self.decode(self._reframe(lambda b: b.__setitem__("lt", "noon")))
        assert error.code == "bad-frame"

    def test_tampered_payload_attributes_claimed_sender(self):
        # a payload record with a bogus kind: caught by the payload codec
        def tamper(body):
            body["payload"] = {"records": [{"proc": "a", "seq": 0,
                                            "lt": 1.0, "kind": "teleport"}]}

        error = self.decode(self._reframe(tamper))
        assert error.code == "bad-payload"
        assert error.src == "a"


class TestSuspicionIntegration:
    """Wire-level anomalies reach the same ledger as sim-path tampering."""

    def _estimator(self):
        spec = SystemSpec.build(
            source="src", processors=["src", "p", "q"],
            links=[("src", "p"), ("p", "q")],
        )
        return EfficientCSA("p", spec, reliable=False,
                            suspicion=SuspicionPolicy(threshold=2.0))

    def test_report_anomaly_records_failure_and_blames(self):
        csa = self._estimator()
        csa.report_anomaly("q", "malformed", 1.0, "wire: bad-payload: oops")
        assert [f.kind for f in csa.validation_failures] == ["malformed"]
        assert csa.validation_failures[0].accused == ("q",)
        assert csa.suspicion.scores["q"] == pytest.approx(1.0)
        assert "q" not in csa.suspicion.evicted_procs

    def test_repeated_anomalies_evict(self):
        csa = self._estimator()
        csa.report_anomaly("q", "malformed", 1.0)
        csa.report_anomaly("q", "malformed", 2.0)
        assert "q" in csa.suspicion.evicted_procs

    def test_noop_outside_hardened_mode(self):
        spec = SystemSpec.build(
            source="src", processors=["src", "p"], links=[("src", "p")]
        )
        csa = EfficientCSA("p", spec, reliable=False)
        csa.report_anomaly("src", "malformed", 1.0)  # must not raise
        assert csa.validation_failures == []
