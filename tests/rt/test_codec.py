"""Binary wire codec v3: differential fuzz against the JSON path.

The binary codec's contract is *strict symmetry with the JSON codec*:
for every frame the two paths must decode to equal :class:`Frame`
objects, and the v3 decoder must classify (never raise on) the same
hostile inputs - garbage, truncation, single-byte corruption, lying
compression flags - that the JSON rejection suite covers.  The corpus
spans every frame type, including boot-carrying syncs and the
delegation pair, plus Hypothesis-generated payloads.
"""

import json
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bootstrap import BootstrapSnapshot
from repro.core.errors import ProtocolError
from repro.core.events import Event, EventId, EventKind
from repro.core.history import HistoryPayload
from repro.core.intervals import ClockBound
from repro.rt.codec import COMPRESS_THRESHOLD, decode_body_binary, encode_frame_binary
from repro.rt.wire import (
    FRAME_TYPES,
    MAGIC,
    MAX_BODY_BYTES,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    ack_frame,
    decode_frame,
    decode_frames,
    deleg_frame,
    dreq_frame,
    encode_frame,
    hello_frame,
    join_frame,
    probe_frame,
    reply_frame,
    shed_frame,
    sync_frame,
)
from repro.testing.strategies import history_payloads


def _send(seq=0, lt=1.0, src="a", dst="b"):
    return Event(EventId(src, seq), lt, EventKind.SEND, dest=dst)


def _boot_snapshot():
    return BootstrapSnapshot(
        sponsor="a",
        last=(("a", 4, 5.25, True), ("b", 2, 4.5, False)),
        undelivered=(("a", 4, 5.25),),
        known=(("a", 4), ("b", 2)),
        loss_flags=(EventId("b", 1),),
        distances=(("a", 4, "b", 2, 0.75),),
        source_rep=EventId("a", 4),
    )


def _mixed_payload(n=8):
    """Every record kind, non-monotone lt deltas, loss flags."""
    records = []
    for i in range(n):
        lt = float(i) * (1.0 if i % 2 else -3.5) + 0.125
        if i % 3 == 0:
            records.append(Event(EventId("a", i), lt, EventKind.SEND, dest="b"))
        elif i % 3 == 1:
            records.append(
                Event(EventId("b", i), lt, EventKind.RECEIVE, send_eid=EventId("a", i - 1))
            )
        else:
            records.append(Event(EventId("c", i), lt, EventKind.INTERNAL))
    return HistoryPayload(
        records=tuple(records),
        loss_flags=(EventId("a", 1), EventId("b", 7)),
    )


def _corpus():
    """At least one frame of every type, exercising optional fields."""
    return [
        hello_frame("a", "b"),
        hello_frame("a", "b", codecs=("json",)),
        ack_frame("b", "a", 17),
        join_frame("fresh", "sponsor"),
        sync_frame(_send(seq=3, lt=2.5), HistoryPayload(records=())),
        sync_frame(_send(seq=9, lt=4.0), _mixed_payload()),
        sync_frame(_send(seq=5, lt=3.0), HistoryPayload(records=()), boot=_boot_snapshot()),
        probe_frame("c0", "n1!serve", 42),
        reply_frame("n1!serve", "c0", 7, ClockBound(1.25, 1.75), degraded=True, age=0.5),
        reply_frame("n1!serve", "c0", 8, ClockBound(2.0, 2.0)),
        shed_frame("n1!serve", "c0", 9, retry_after=0.25, reason="queue"),
        dreq_frame("t1n0!anchor", "c1!anchor", 3),
        deleg_frame(
            "c1!anchor", "t1n0!anchor", 3, ClockBound(5.0, 5.002),
            hops=2, stratum=1, degraded=True, age=0.05,
        ),
    ]


class TestDifferentialRoundTrip:
    """binary(frame) and json(frame) decode to the same Frame."""

    @pytest.mark.parametrize(
        "frame", _corpus(), ids=lambda f: f"{f.type}-{f.src}-{f.seq}-{f.nonce}"
    )
    def test_corpus_equality(self, frame):
        via_json = decode_frame(encode_frame(frame, "json"))
        via_binary = decode_frame(encode_frame(frame, "binary"))
        assert via_json.ok and via_binary.ok
        assert via_json.frame == frame
        assert via_binary.frame == frame
        assert via_binary.frame == via_json.frame

    def test_corpus_spans_every_frame_type(self):
        assert {frame.type for frame in _corpus()} == set(FRAME_TYPES)

    def test_version_echo(self):
        frame = ack_frame("b", "a", 1)
        assert decode_frame(encode_frame(frame, "json")).version == WIRE_VERSION
        assert (
            decode_frame(encode_frame(frame, "binary")).version == WIRE_VERSION_BINARY
        )

    @given(history_payloads())
    @settings(max_examples=200, deadline=None)
    def test_sync_payloads_differential(self, payload):
        frame = sync_frame(_send(seq=3, lt=2.5), payload)
        via_json = decode_frame(encode_frame(frame, "json")).frame
        via_binary = decode_frame(encode_frame(frame, "binary")).frame
        assert via_binary == via_json == frame

    @given(
        st.lists(
            st.floats(
                allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
            ),
            min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_lt_delta_encoding_is_exact(self, lts):
        # the lt delta codec works on IEEE-754 bit patterns; every float
        # sequence (tiny steps, sign flips, huge jumps) must survive bit-exact
        records = tuple(
            Event(EventId("a", i), lt, EventKind.INTERNAL) for i, lt in enumerate(lts)
        )
        frame = sync_frame(_send(seq=len(lts), lt=1.0), HistoryPayload(records=records))
        decoded = decode_frame(encode_frame(frame, "binary")).frame
        assert [e.lt for e in decoded.payload.records] == lts

    def test_compressed_body_round_trips(self):
        records = tuple(
            Event(EventId("a", i), float(i) + 0.5, EventKind.INTERNAL)
            for i in range(400)
        )
        frame = sync_frame(_send(seq=400, lt=500.0), HistoryPayload(records=records))
        data = encode_frame(frame, "binary")
        assert len(data) > 7  # framed
        result = decode_frame(data)
        assert result.ok and result.frame == frame

    def test_binary_is_smaller_than_json(self):
        frame = sync_frame(_send(seq=9, lt=4.0), _mixed_payload(32))
        assert len(encode_frame(frame, "binary")) < len(encode_frame(frame, "json"))

    def test_boot_sync_differential(self):
        frame = sync_frame(
            _send(seq=5, lt=3.0), _mixed_payload(4), boot=_boot_snapshot()
        )
        via_json = decode_frame(encode_frame(frame, "json")).frame
        via_binary = decode_frame(encode_frame(frame, "binary")).frame
        assert via_binary == via_json == frame
        assert via_binary.boot.frontier() == {"a": 4, "b": 2}

    def test_oversized_encode_raises_locally(self):
        # incompressible lts (LCG bit soup) so zlib can't squeeze the body
        # back under the cap: the encoder must refuse, same as JSON
        x = 1
        records = []
        for i in range(40_000):
            x = (x * 6364136223846793005 + 1442695040888963407) % (1 << 63)
            records.append(Event(EventId("a", i), x / float(1 << 40), EventKind.INTERNAL))
        with pytest.raises(ProtocolError):
            encode_frame(
                sync_frame(
                    _send(seq=40_000, lt=5e10), HistoryPayload(records=tuple(records))
                ),
                "binary",
            )

    def test_unknown_codec_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(ack_frame("b", "a", 1), "msgpack")


def _binary_corpus():
    return [encode_frame(frame, "binary") for frame in _corpus()]


def _reframe_binary(body: bytes) -> bytes:
    return struct.pack(">2sBI", MAGIC, WIRE_VERSION_BINARY, len(body)) + body


class TestBinaryRejectionPaths:
    """The v3 decoder classifies hostile bytes; it never raises."""

    def decode_error(self, data):
        result = decode_frame(data)
        assert not result.ok and result.frame is None
        return result.error

    def test_empty_body(self):
        assert self.decode_error(_reframe_binary(b"")).code == "bad-frame"

    def test_unknown_type_code(self):
        # flags=0, type byte far past the registered range
        assert self.decode_error(_reframe_binary(bytes([0, 250]))).code == "bad-frame"

    def test_lying_zlib_flag(self):
        # compression flag set over a body that is not zlib data
        body = encode_frame(ack_frame("b", "a", 1), "binary")[7:]
        data = _reframe_binary(bytes([body[0] | 0x01]) + body[1:])
        assert self.decode_error(data).code == "bad-frame"

    def test_zlib_bomb_is_capped(self):
        # a tiny frame that inflates past MAX_BODY_BYTES must be refused,
        # not expanded: the decompression cap is part of the attack surface
        bomb = zlib.compress(b"\x00" * (4 * MAX_BODY_BYTES))
        assert len(bomb) < 1000
        assert self.decode_error(_reframe_binary(b"\x01" + bomb)).code == "oversized"

    def test_truncated_string_table(self):
        body = encode_frame(ack_frame("b", "a", 1), "binary")[7:]
        assert self.decode_error(_reframe_binary(body[:3])).code == "bad-frame"

    @given(st.binary(max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_random_bodies_never_raise(self, body):
        result = decode_frame(_reframe_binary(body))
        assert result.ok == (result.error is None)
        if not result.ok:
            assert result.error.code

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_truncations_never_raise(self, data):
        frame_bytes = data.draw(st.sampled_from(_binary_corpus()))
        cut = data.draw(st.integers(min_value=0, max_value=len(frame_bytes)))
        result = decode_frame(frame_bytes[:cut])
        if cut < len(frame_bytes):
            assert not result.ok
            assert result.error.code in ("short-frame", "length-mismatch", "oversized")

    @given(st.data())
    @settings(max_examples=300, deadline=None)
    def test_single_byte_corruption_never_raises(self, data):
        frame_bytes = bytearray(data.draw(st.sampled_from(_binary_corpus())))
        index = data.draw(st.integers(min_value=0, max_value=len(frame_bytes) - 1))
        frame_bytes[index] = data.draw(st.integers(min_value=0, max_value=255))
        result = decode_frame(bytes(frame_bytes))
        assert result.ok == (result.error is None)

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_body_truncation_never_raises(self, data):
        # truncate the *body* but fix up the declared length, so the frame
        # layer passes and the v3 body parser sees the short buffer
        frame_bytes = data.draw(st.sampled_from(_binary_corpus()))
        body = frame_bytes[7:]
        cut = data.draw(st.integers(min_value=0, max_value=max(0, len(body) - 1)))
        result = decode_body_binary(body[:cut])
        assert result.ok == (result.error is None)


class TestDatagramChains:
    """decode_frames over coalesced datagrams, mixed codecs and damage."""

    def test_mixed_codec_chain(self):
        frames = [ack_frame("b", "a", i) for i in range(4)]
        data = (
            encode_frame(frames[0], "binary")
            + encode_frame(frames[1], "json")
            + encode_frame(frames[2], "binary")
            + encode_frame(frames[3], "json")
        )
        results = list(decode_frames(data))
        assert [r.frame.seq for r in results] == [0, 1, 2, 3]
        assert [r.version for r in results] == [
            WIRE_VERSION_BINARY, WIRE_VERSION, WIRE_VERSION_BINARY, WIRE_VERSION,
        ]

    def test_corrupt_tail_stops_cleanly(self):
        good = encode_frame(ack_frame("b", "a", 1), "binary")
        results = list(decode_frames(good + b"\xff\xff\xff"))
        assert results[0].ok and results[0].frame.seq == 1
        assert not results[-1].ok

    def test_whole_corpus_coalesced(self):
        corpus = _corpus()
        data = b"".join(encode_frame(frame, "binary") for frame in corpus)
        if len(data) <= MAX_BODY_BYTES:
            decoded = [r.frame for r in decode_frames(data)]
            assert decoded == corpus
