"""Transports: loopback delivery, fault middleware verdicts, UDP sockets.

No estimators here - raw byte frames through each medium, asserting the
datagram service contract (fire-and-forget, at-most-once per datagram,
crashed/partitioned traffic suppressed) that the node daemon builds on.
"""

import asyncio

import pytest

from repro.core.errors import SimulationError
from repro.rt.clock import TimeBase
from repro.rt.transport import (
    FaultMiddleware,
    LoopbackTransport,
    UDPTransport,
)
from repro.sim.faults import (
    CrashWindow,
    Duplication,
    FaultPlan,
    PartitionWindow,
)


def _collector(box, name):
    def handler(data):
        box.setdefault(name, []).append(data)

    return handler


async def _settle(seconds=0.05):
    await asyncio.sleep(seconds)


class TestLoopback:
    def test_immediate_delivery(self):
        async def run():
            transport = LoopbackTransport()
            await transport.start()
            box = {}
            transport.register("b", _collector(box, "b"))
            transport.send("a", "b", b"one")
            transport.send("a", "b", b"two")
            await _settle(0)
            await transport.stop()
            return box

        box = asyncio.run(run())
        assert box["b"] == [b"one", b"two"]

    def test_unregistered_destination_is_dropped(self):
        async def run():
            transport = LoopbackTransport()
            await transport.start()
            transport.send("a", "ghost", b"x")
            await _settle(0)
            await transport.stop()

        asyncio.run(run())  # must not raise

    def test_send_before_start_is_dropped(self):
        async def run():
            transport = LoopbackTransport()
            box = {}
            transport.register("b", _collector(box, "b"))
            transport.send("a", "b", b"early")
            await transport.start()
            await _settle(0)
            return box

        assert asyncio.run(run()) == {}

    def test_handler_exception_is_contained(self):
        async def run():
            transport = LoopbackTransport()
            await transport.start()
            transport.register("b", lambda data: 1 / 0)
            box = {}
            transport.register("c", _collector(box, "c"))
            transport.send("a", "b", b"boom")
            transport.send("a", "c", b"fine")
            await _settle(0)
            return transport, box

        transport, box = asyncio.run(run())
        assert transport.handler_errors == 1
        assert box["c"] == [b"fine"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            LoopbackTransport(delay=-0.1)

    def test_jittered_delivery_arrives(self):
        async def run():
            transport = LoopbackTransport(delay=0.01, jitter=0.02, seed=7)
            await transport.start()
            box = {}
            transport.register("b", _collector(box, "b"))
            for i in range(5):
                transport.send("a", "b", bytes([i]))
            await _settle(0.1)
            await transport.stop()
            return box

        box = asyncio.run(run())
        assert sorted(box["b"]) == [bytes([i]) for i in range(5)]


class TestFaultMiddleware:
    def _wrap(self, plan, time_base=None):
        inner = LoopbackTransport()
        return FaultMiddleware(
            inner,
            plan,
            time_base or TimeBase(),
            procs=["a", "b"],
            links=[("a", "b")],
            source="a",
        )

    def test_partition_drops_and_counts(self):
        async def run():
            plan = FaultPlan(seed=1, injections=(
                PartitionWindow("a", "b", 0.0, 60.0),
            ))
            transport = self._wrap(plan)
            await transport.start()
            box = {}
            transport.register("b", _collector(box, "b"))
            transport.send("a", "b", b"x")
            await _settle(0)
            await transport.stop()
            return transport, box

        transport, box = asyncio.run(run())
        assert box == {}
        assert transport.dropped == 1

    def test_crashed_sender_and_receiver_suppressed(self):
        async def run():
            plan = FaultPlan(seed=1, injections=(CrashWindow("b", 0.0, 60.0),))
            transport = self._wrap(plan)
            await transport.start()
            box = {}
            transport.register("a", _collector(box, "a"))
            transport.register("b", _collector(box, "b"))
            transport.send("a", "b", b"to-crashed")  # receiver down
            transport.send("b", "a", b"from-crashed")  # sender down
            await _settle(0)
            await transport.stop()
            return transport, box

        transport, box = asyncio.run(run())
        assert box == {}
        assert transport.dropped == 2

    def test_duplication_echoes(self):
        async def run():
            plan = FaultPlan(seed=3, injections=(
                Duplication("a", "b", prob=1.0, start=0.0, end=60.0),
            ))
            transport = self._wrap(plan)
            await transport.start()
            box = {}
            transport.register("b", _collector(box, "b"))
            transport.send("a", "b", b"x")
            await _settle(0.2)
            await transport.stop()
            return transport, box

        transport, box = asyncio.run(run())
        assert box["b"] == [b"x", b"x"]
        assert transport.duplicated == 1

    def test_clean_plan_passes_through(self):
        async def run():
            transport = self._wrap(FaultPlan(seed=0))
            await transport.start()
            box = {}
            transport.register("b", _collector(box, "b"))
            transport.send("a", "b", b"x")
            await _settle(0)
            await transport.stop()
            return transport, box

        transport, box = asyncio.run(run())
        assert box["b"] == [b"x"]
        assert (transport.dropped, transport.duplicated) == (0, 0)

    def test_unknown_processor_in_plan_rejected(self):
        plan = FaultPlan(seed=0, injections=(CrashWindow("zz", 0.0, 1.0),))
        with pytest.raises(SimulationError):
            self._wrap(plan)


class TestUDP:
    def test_round_trip_over_real_sockets(self):
        async def run():
            transport = UDPTransport({
                "a": ("127.0.0.1", 0), "b": ("127.0.0.1", 0),
            })
            box = {}
            transport.register("a", _collector(box, "a"))
            transport.register("b", _collector(box, "b"))
            await transport.start()
            # port 0 was resolved to real ephemeral ports at start
            assert all(port != 0 for _host, port in transport.addresses.values())
            transport.send("a", "b", b"ping")
            await _settle(0.1)
            transport.send("b", "a", b"pong")
            await _settle(0.1)
            await transport.stop()
            return box

        box = asyncio.run(run())
        assert box["b"] == [b"ping"]
        assert box["a"] == [b"pong"]

    def test_unconfigured_endpoint_rejected(self):
        transport = UDPTransport({"a": ("127.0.0.1", 0)})
        with pytest.raises(SimulationError):
            transport.register("zz", lambda data: None)

    def test_unregister_closes_socket_and_drops_traffic(self):
        async def run():
            transport = UDPTransport({
                "a": ("127.0.0.1", 0), "b": ("127.0.0.1", 0),
            })
            box = {}
            transport.register("a", _collector(box, "a"))
            transport.register("b", _collector(box, "b"))
            await transport.start()
            transport.unregister("b")
            transport.send("a", "b", b"into-the-void")
            await _settle(0.05)
            await transport.stop()
            return box

        box = asyncio.run(run())
        assert "b" not in box
