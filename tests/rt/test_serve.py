"""The serving tier under load, faults, and crashes.

The load-bearing assertions:

* admission control sheds explicitly (token bucket and queue bound) with
  honest ``retry_after`` hints - overload never degenerates into silence;
* every bound a client *accepts* contains true source time - fresh,
  degraded, faulted, or mid-failover, soundness is unconditional;
* degraded replies are widened, flagged, and still sound - a stressed
  server degrades loudly instead of lying;
* clients ride out a primary crash: accrual failover to a backup and
  re-convergence, all through FaultMiddleware burst loss + duplication;
* the CLIs die cleanly: ``--timeout`` and SIGINT produce a partial
  archived document and a non-zero exit, never a traceback or hang.

All async tests run via asyncio.run inside plain pytest functions.
"""

import asyncio
import json
import math
import os
import signal
import subprocess
import sys

import pytest

from repro.core.errors import SimulationError
from repro.rt.cli import main as rt_main
from repro.rt.client import AccrualHealth, ClientConfig, ServeClient
from repro.rt.clock import MonotonicClockSource, SkewedClockSource, TimeBase
from repro.rt.cluster import ClusterConfig, CrashSchedule, LiveCluster
from repro.rt.loadgen import (
    ServeLoadConfig,
    _percentile,
    run_serve_load,
    run_serve_load_sync,
)
from repro.rt.serve import (
    ServeConfig,
    ServeNode,
    TokenBucket,
    serve_endpoint,
    serve_owner,
)
from repro.rt.serve_cli import main as serve_main
from repro.rt.wire import decode_frame, encode_frame, probe_frame
from repro.sim.faults import BurstLoss, Duplication, FaultPlan, RetransmitPolicy
from repro.sim.serialize import load_run

FAST_RETRANSMIT = RetransmitPolicy(timeout=0.3, backoff=1.5, max_retries=3)


def _cluster_config(**overrides):
    defaults = dict(
        processors=("n0", "n1", "n2"),
        links=(("n0", "n1"), ("n1", "n2"), ("n0", "n2")),
        duration=1.5,
        gossip_period=0.05,
        sample_period=0.2,
        clocks={
            "n1": SkewedClockSource(1.0 + 100e-6),
            "n2": SkewedClockSource(1.0 - 150e-6, offset=0.25),
        },
        retransmit=FAST_RETRANSMIT,
        seed=42,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _client_template(**overrides):
    defaults = dict(
        name="c",
        servers=("unset",),
        eps_max=0.02,
        probe_timeout=0.15,
        min_interval=0.01,
        max_interval=0.1,
        backoff_base=0.02,
        backoff_cap=0.2,
    )
    defaults.update(overrides)
    return ClientConfig(**defaults)


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.05)  # half a token so far
        assert bucket.try_take(0.1)

    def test_retry_after_is_honest(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        assert bucket.try_take(0.0)
        hint = bucket.retry_after(0.0)
        assert hint == pytest.approx(0.25)
        assert bucket.try_take(hint)

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        bucket.try_take(0.0)
        assert [bucket.try_take(1000.0) for _ in range(3)] == [True, True, False]

    def test_time_going_backwards_is_safe(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_take(1.0)
        assert not bucket.try_take(0.0)  # no refill from a rewind
        assert bucket.try_take(1.1)

    def test_rejects_bad_parameters(self):
        for rate, burst in ((0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)):
            with pytest.raises(SimulationError):
                TokenBucket(rate, burst)


class TestConfigValidation:
    def test_serve_config_rejects_nonsense(self):
        for kwargs in (
            dict(bucket_rate=0.0),
            dict(queue_limit=0),
            dict(service_time=-0.1),
            dict(stale_after=-1.0),
            dict(degraded_rho=-0.5),
            dict(unsynced_retry_after=-1.0),
        ):
            with pytest.raises(SimulationError):
                ServeConfig(**kwargs)

    def test_client_config_rejects_nonsense(self):
        for kwargs in (
            dict(servers=()),
            dict(servers=("s", "s")),
            dict(eps_max=0.0),
            dict(min_interval=0.5, max_interval=0.1),
            dict(probe_timeout=0.0),
            dict(backoff_base=0.0),
            dict(failover_threshold=0.0),
            dict(shed_failover_streak=0),
        ):
            merged = dict(name="c", servers=("s",))
            merged.update(kwargs)
            with pytest.raises(SimulationError):
                ClientConfig(**merged)

    def test_load_config_rejects_unknown_server(self):
        with pytest.raises(SimulationError):
            ServeLoadConfig(cluster=_cluster_config(), servers=("zz",))

    def test_sync_interval_follows_eps_over_two_rho(self):
        config = _client_template(eps_max=0.1, min_interval=0.001, max_interval=10.0)
        assert config.sync_interval(0.01) == pytest.approx(0.1 / 0.02)
        # clamped both ways; drift-free clients still probe for liveness
        assert config.sync_interval(1e9) == 0.001
        assert config.sync_interval(0.0) == 10.0

    def test_serve_endpoint_naming(self):
        assert serve_endpoint("n1") == "n1!serve"
        assert serve_owner("n1!serve") == "n1"
        assert serve_owner("n1") is None
        assert serve_owner("!serve") is None

    def test_percentile(self):
        assert _percentile([], 99.0) is None
        assert _percentile([5.0], 99.0) == 5.0
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 99.0) == 99.0
        assert _percentile(values, 50.0) == 50.0


class TestAccrualHealth:
    def test_replies_learn_cadence_and_silence_raises_score(self):
        health = AccrualHealth()
        for t in (0.0, 0.1, 0.2, 0.3):
            health.on_reply(t)
        assert health.score(0.35) < 1.0
        assert health.score(1.0) > 3.0

    def test_failures_accumulate_and_sheds_clear_them(self):
        health = AccrualHealth()
        health.on_reply(0.0)
        for _ in range(3):
            health.on_failure()
        assert health.score(0.0) >= 3.0
        health.on_alive()
        assert health.score(0.0) < 1.0

    def test_reset_forgets_everything(self):
        health = AccrualHealth()
        health.on_reply(0.0)
        health.on_failure()
        health.reset()
        assert health.score(100.0) == 0.0


class _ServeRig:
    """A synchronous rig: source node + serve endpoint, no event loop."""

    def __init__(self, serve_config=None, proc="n0", prime=None):
        from repro.core.events import Event, EventId, EventKind
        from repro.rt.cluster import build_spec
        from repro.rt.node import Node, NodeConfig
        from repro.rt.transport import LoopbackTransport

        config = _cluster_config()
        self.time_base = TimeBase()
        self.transport = LoopbackTransport()
        self.node = Node(
            NodeConfig(proc=proc, spec=build_spec(config), retransmit=FAST_RETRANSMIT),
            self.transport,
            clock=MonotonicClockSource(),
            time_base=self.time_base,
        )
        # a node has no estimate until its first local event; the source
        # anchors on any internal tick (its lt *is* source time)
        if prime if prime is not None else proc == "n0":
            lt = self.node.clock.lt_at(self.time_base.elapsed())
            self.node.estimator.on_internal(Event(EventId(proc, 0), lt, EventKind.INTERNAL))
        self.serve = ServeNode(self.node, self.transport, serve_config)

    def probe(self, nonce=0, src="c0"):
        raw = self.serve.handle_probe_bytes(
            encode_frame(probe_frame(src, self.serve.endpoint, nonce))
        )
        return None if raw is None else decode_frame(raw).frame


class TestServeNodeSync:
    """The synchronous core: decode + admit + answer, no event loop."""

    def test_source_node_replies_soundly(self):
        rig = _ServeRig()
        frame = rig.probe(nonce=5)
        assert frame.type == "reply" and frame.nonce == 5
        # the source defines real time: its interval brackets elapsed now
        assert frame.bound.contains(rig.time_base.elapsed(), tolerance=0.05)
        assert rig.serve.stats.replies == 1

    def test_unsynced_node_sheds_instead_of_lying(self):
        rig = _ServeRig(proc="n1")  # never received a protocol event
        frame = rig.probe()
        assert frame.type == "shed" and frame.reason == "unsynced"
        assert frame.retry_after == ServeConfig().unsynced_retry_after
        assert rig.serve.stats.shed == {"unsynced": 1}

    def test_overload_shed_with_honest_hint(self):
        rig = _ServeRig(ServeConfig(bucket_rate=5.0, bucket_burst=1.0))
        assert rig.probe(nonce=0).type == "reply"
        shed = rig.probe(nonce=1)
        assert shed.type == "shed" and shed.reason == "overload"
        assert 0.0 < shed.retry_after <= 0.2 + 1e-6
        assert rig.serve.stats.shed_rate() == pytest.approx(0.5)

    def test_queue_shed_when_backlog_full(self):
        rig = _ServeRig(ServeConfig(queue_limit=2))
        backlog = probe_frame("cX", rig.serve.endpoint, 99)
        rig.serve._queue.extend([backlog, backlog])
        shed = rig.probe()
        assert shed.type == "shed" and shed.reason == "queue"
        assert shed.retry_after > 0

    def test_garbage_and_strays_counted_not_answered(self):
        rig = _ServeRig()
        assert rig.serve.handle_probe_bytes(b"\x00garbage") is None
        from repro.rt.wire import hello_frame

        assert rig.serve.handle_probe_bytes(
            encode_frame(hello_frame("a", rig.serve.endpoint))
        ) is None
        # a probe addressed to a different endpoint is a stray too
        assert rig.serve.handle_probe_bytes(
            encode_frame(probe_frame("c0", "n9!serve", 1))
        ) is None
        assert rig.serve.stats.decode_errors == 1
        assert rig.serve.stats.rejected_frames == 2
        assert rig.serve.stats.probes == 0


class TestDegradedReplies:
    def _stale_rig(self, serve_config):
        """A source node whose estimator saw its last event at rig build."""
        return _ServeRig(serve_config)

    def test_stale_state_degrades_widened_and_sound(self):
        import time

        rig = self._stale_rig(ServeConfig(stale_after=0.01, degraded_rho=0.5))
        time.sleep(0.05)
        frame = rig.probe()
        assert frame.type == "reply" and frame.degraded is True
        assert frame.age > 0.01
        assert rig.serve.stats.degraded_replies == 1
        # widened by rho*age on both sides, and still contains the truth
        assert frame.bound.width == pytest.approx(2 * 0.5 * frame.age, rel=0.2)
        assert frame.bound.contains(rig.time_base.elapsed(), tolerance=1e-6)

    def test_fresh_state_stays_crisp(self):
        rig = self._stale_rig(ServeConfig(stale_after=10.0))
        frame = rig.probe()
        assert frame.degraded is False
        assert rig.serve.stats.degraded_replies == 0


async def _serve_scenario(
    cluster_config,
    *,
    servers,
    client_template,
    clients=1,
    serve_config=None,
    warmup=0.3,
):
    config = ServeLoadConfig(
        cluster=cluster_config,
        servers=servers,
        serve=serve_config if serve_config is not None else ServeConfig(),
        clients=clients,
        client_template=client_template,
        warmup=warmup,
    )
    return await run_serve_load(config)


class TestServeLoopback:
    def test_clients_accept_only_sound_bounds(self):
        result = asyncio.run(
            _serve_scenario(
                _cluster_config(duration=1.2),
                servers=("n1", "n2"),
                client_template=_client_template(),
                clients=2,
            )
        )
        assert len(result.accepted_samples) > 0
        assert result.unsound_accepted == []
        assert result.served_qps() > 0
        for client in result.clients:
            assert client.stats.decode_errors == 0
            current = client.current_bound()
            if current is not None:
                rt, bound = current
                assert bound.contains(rt, tolerance=1e-6)

    def test_overload_sheds_and_clients_back_off(self):
        result = asyncio.run(
            _serve_scenario(
                _cluster_config(duration=1.2),
                servers=("n1",),
                serve_config=ServeConfig(bucket_rate=5.0, bucket_burst=1.0),
                client_template=_client_template(max_interval=0.02),
                clients=3,
            )
        )
        shed = sum(node.stats.shed_total for node in result.servers.values())
        assert shed > 0, "undersized bucket must shed"
        assert result.shed_rate() > 0
        assert result.unsound_accepted == []
        # sheds were explicit: clients saw them and know the reason
        assert sum(c.stats.sheds for c in result.clients) > 0
        reasons = {}
        for client in result.clients:
            for reason, count in client.stats.shed_reasons.items():
                reasons[reason] = reasons.get(reason, 0) + count
        assert reasons.get("overload", 0) > 0

    def test_dead_primary_times_out_then_fails_over(self):
        async def scenario():
            config = _cluster_config(duration=1.5)
            live = LiveCluster(
                config,
                extra_procs=(serve_endpoint("n2"), "c0"),
                extra_links=(
                    ("c0", serve_endpoint("n1")),
                    ("c0", serve_endpoint("n2")),
                ),
            )
            # n1 has no serving endpoint at all: probes to it vanish
            backup = ServeNode(live.by_name["n2"], live.transport)
            live.attach_companion("n2", backup)
            client = ServeClient(
                _client_template(
                    name="c0",
                    servers=(serve_endpoint("n1"), serve_endpoint("n2")),
                    probe_timeout=0.05,
                    failover_threshold=2.0,
                ),
                live.transport,
                live.time_base,
            )
            try:
                await live.start()
                await asyncio.sleep(0.3)
                await client.start()
                await live.run_sampling()
            finally:
                await client.stop()
                await live.finish()
            return client

        client = asyncio.run(scenario())
        assert client.stats.timeouts >= 2
        assert client.stats.failovers >= 1
        assert client.failover_events[0][1] == serve_endpoint("n1")
        assert client.failover_events[0][2] == serve_endpoint("n2")
        assert client.stats.accepted > 0, "the backup must take over"
        assert client.unsound_samples() == []


class TestServeChaos:
    """The acceptance gate: burst loss + duplication + primary crash."""

    def _chaos_config(self):
        client_names = tuple(f"c{i}" for i in range(4))
        injections = []
        for name in client_names:
            for server in ("n1", "n2"):
                endpoint = serve_endpoint(server)
                injections.append(
                    BurstLoss(name, endpoint, p_enter=0.15, p_exit=0.4, loss_bad=0.9)
                )
                injections.append(Duplication(name, endpoint, prob=0.25))
        return ServeLoadConfig(
            cluster=_cluster_config(
                duration=2.4,
                gossip_period=0.15,
                faults=FaultPlan(seed=7, injections=tuple(injections)),
                crashes=(CrashSchedule(proc="n1", stop_at=1.0, restart_at=1.8),),
            ),
            servers=("n1", "n2"),
            serve=ServeConfig(
                bucket_rate=40.0, bucket_burst=3.0, stale_after=0.05
            ),
            clients=4,
            client_template=_client_template(
                max_interval=0.03,
                probe_timeout=0.1,
                failover_threshold=2.0,
            ),
            warmup=0.4,
        )

    def test_chaos_run_is_sound_and_fails_over(self, tmp_path):
        result = run_serve_load_sync(self._chaos_config())
        # the headline guarantee: zero unsound accepted bounds, ever
        assert result.unsound_accepted == []
        assert len(result.accepted_samples) > 10
        # the tier was actually stressed: sheds and degraded replies happened
        assert sum(n.stats.shed_total for n in result.servers.values()) > 0
        assert sum(n.stats.degraded_replies for n in result.servers.values()) > 0
        # the primary crash drove at least one client to the backup
        assert any(src == serve_endpoint("n1") for _, _, src, _ in result.failover_events())
        reconv = result.reconvergence_times()
        assert reconv and all(math.isfinite(v) for v in reconv.values()), (
            f"a client never recovered: {reconv}"
        )
        # the document counts everything and round-trips through load_run
        doc = result.to_document()
        serving = doc["serving"]
        assert serving["unsound_accepted"] == 0
        assert serving["shed_rate"] > 0
        assert serving["failovers"]
        assert serving["p99_error_bound"] > 0
        path = tmp_path / "chaos_serve.json"
        path.write_text(json.dumps(doc))
        spec, trace, samples = load_run(str(path))
        assert len(samples) == len(result.cluster.samples)

    def test_duplicated_replies_are_at_most_once(self):
        config = self._chaos_config()
        result = run_serve_load_sync(config)
        # duplicated frames reached clients but never double-counted:
        # each probe yields at most one accepted sample
        for client in result.clients:
            assert client.stats.accepted <= client.stats.probes
        assert sum(c.stats.unmatched for c in result.clients) > 0


class TestCliRobustness:
    def test_serve_cli_happy_path(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        code = serve_main(
            [
                "--duration", "1.0", "--clients", "2", "--warmup", "0.2",
                "--eps-max", "0.02", "--out", str(out), "--require-sound",
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert "partial" not in doc
        assert doc["serving"]["unsound_accepted"] == 0

    def test_serve_cli_timeout_partial_doc(self, tmp_path, capsys):
        out = tmp_path / "partial.json"
        code = serve_main(
            ["--duration", "60", "--clients", "1", "--timeout", "0.8",
             "--out", str(out)]
        )
        assert code == 124
        doc = json.loads(out.read_text())
        assert doc["partial"] is True
        assert "aborted (timeout)" in capsys.readouterr().err

    def test_rt_cli_timeout_partial_doc(self, tmp_path, capsys):
        out = tmp_path / "partial_rt.json"
        code = rt_main(["--duration", "60", "--timeout", "0.6", "--out", str(out)])
        assert code == 124
        assert json.loads(out.read_text())["partial"] is True

    def test_cli_rejects_bad_usage(self, capsys):
        assert serve_main(["--nodes", "1"]) == 2
        assert serve_main(["--timeout", "0"]) == 2
        assert serve_main(["--servers", "9"]) == 2
        assert rt_main(["--timeout", "-1"]) == 2
        capsys.readouterr()

    def test_sigint_exits_130_with_partial_archive(self, tmp_path):
        out = tmp_path / "sigint.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.rt.serve_cli",
             "--duration", "60", "--clients", "1", "--out", str(out)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            import time

            time.sleep(1.6)
            proc.send_signal(signal.SIGINT)
            _stdout, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 130
        assert "Traceback" not in stderr
        assert json.loads(out.read_text())["partial"] is True
