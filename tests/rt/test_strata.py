"""The stratum hierarchy: wire frames, membership, delegation, federation.

Load-bearing assertions:

* the ``dreq``/``deleg`` frame pair round-trips, and the paper's
  ``K2 <= 2`` indirection cap is part of the wire contract - frames
  claiming deeper indirection are rejected at encode *and* decode;
* tier/federation specs validate the inter-tier link policy (only the
  core lacks anchors, only borders re-export, anchors must be upstream
  exports);
* ``compose_delegated`` advances adopted bounds through the border's
  advertised drift with the correct sign handling and never inverts;
* a ``DelegationServer``'s synchronous core attributes everything:
  garbage, misaddressed frames, requests against a down node, and an
  unsynced estimator (shed, not served);
* an in-process loopback federation converges to sound bounded external
  estimates, survives the primary anchor's crash through re-election,
  and archives a document that ``load_run`` accepts with the gradient
  scorecard inside;
* empty-sample edges return documented sentinels instead of raising
  (``reconvergence_after`` -> ``(inf, 0)``, ``percentile`` -> None).

All async paths are driven through ``run_federation_sync`` inside plain
pytest functions; durations are short with periods scaled to match.
"""

import json
import math

import pytest

from repro.core.errors import ProtocolError, SimulationError
from repro.core.intervals import ClockBound
from repro.core.specs import DriftSpec
from repro.rt.clock import MonotonicClockSource, TimeBase
from repro.rt.cluster import ClusterConfig, CrashSchedule, build_spec
from repro.rt.loadgen import percentile
from repro.rt.node import Node, NodeConfig
from repro.rt.strata import (
    AnchorLink,
    AnchorLinkConfig,
    DelegatedBound,
    DelegationServer,
    FederationConfig,
    FederationSpec,
    K2_MAX_HOPS,
    PeerDirectory,
    TierSpec,
    compose_delegated,
    deleg_endpoint,
    deleg_owner,
    dump_federation,
    gradient_scorecard,
    run_federation_sync,
)
from repro.rt.transport import LoopbackTransport
from repro.rt.wire import (
    MAX_DELEGATION_HOPS,
    decode_frame,
    deleg_frame,
    dreq_frame,
    encode_frame,
)
from repro.sim.faults import RetransmitPolicy
from repro.sim.runner import EstimateSample
from repro.sim.serialize import load_run

FAST_RETRANSMIT = RetransmitPolicy(timeout=0.3, backoff=1.5, max_retries=3)


def _core() -> TierSpec:
    return TierSpec(
        name="core",
        stratum=0,
        processors=("c0", "c1", "c2"),
        links=(("c0", "c1"), ("c1", "c2"), ("c0", "c2")),
        exports=("c1", "c2"),
    )


def _downstream(k: int = 1, nodes: int = 2) -> TierSpec:
    names = tuple(f"t{k}n{i}" for i in range(nodes))
    return TierSpec(
        name=f"tier{k}",
        stratum=1,
        processors=names,
        links=tuple((names[i], names[i + 1]) for i in range(nodes - 1)),
        border=names[0],
        anchors=("c1", "c2"),
    )


def _federation_spec(tiers: int = 1, nodes: int = 2) -> FederationSpec:
    return FederationSpec(
        tiers=(_core(),) + tuple(_downstream(k, nodes) for k in range(1, tiers + 1))
    )


def _federation_config(**overrides) -> FederationConfig:
    defaults = dict(
        spec=_federation_spec(),
        duration=2.0,
        gossip_period=0.05,
        sample_period=0.15,
        transport="loopback",
        clock_plans={
            "c1": {"kind": "skewed", "rate": 1.0 + 120e-6},
            "c2": {"kind": "skewed", "rate": 1.0 - 90e-6, "offset": 0.1},
            "t1n1": {"kind": "skewed", "rate": 1.0 + 200e-6},
        },
        sync_period=0.1,
        probe_timeout=0.2,
        seed=42,
    )
    defaults.update(overrides)
    return FederationConfig(**defaults)


class TestStrataWire:
    def test_dreq_round_trip(self):
        frame = dreq_frame("t1n0!anchor", "c1!deleg", 7)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.error is None
        assert decoded.frame.type == "dreq"
        assert decoded.frame.src == "t1n0!anchor"
        assert decoded.frame.dst == "c1!deleg"
        assert decoded.frame.nonce == 7

    def test_deleg_round_trip(self):
        frame = deleg_frame(
            "c1!deleg",
            "t1n0!anchor",
            3,
            ClockBound(10.0, 10.25),
            hops=1,
            stratum=0,
            degraded=True,
            age=0.4,
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded.error is None
        out = decoded.frame
        assert out.type == "deleg"
        assert out.bound == ClockBound(10.0, 10.25)
        assert out.hops == 1
        assert out.stratum == 0
        assert out.degraded is True
        assert out.age == pytest.approx(0.4)

    def test_encode_enforces_k2_cap(self):
        bound = ClockBound(1.0, 2.0)
        for hops in (0, MAX_DELEGATION_HOPS + 1, True):
            with pytest.raises(ProtocolError):
                deleg_frame("a", "b", 0, bound, hops=hops, stratum=0)
        with pytest.raises(ProtocolError):
            deleg_frame("a", "b", 0, bound, hops=1, stratum=-1)
        with pytest.raises(ProtocolError):
            deleg_frame("a", "b", 0, ClockBound.unbounded(), hops=1, stratum=0)

    def test_decode_rejects_excess_hops(self):
        # a remote claiming 3 hops of indirection violates the K2 bound:
        # tamper with a valid frame's body rather than trusting encode
        good = encode_frame(
            deleg_frame("c1!deleg", "t1n0!anchor", 0, ClockBound(1.0, 2.0), hops=2, stratum=1)
        )
        import struct

        from repro.rt.wire import MAGIC, WIRE_VERSION

        header_size = struct.calcsize(">2sBI")
        body = json.loads(good[header_size:])
        body["hops"] = MAX_DELEGATION_HOPS + 1
        raw = json.dumps(body, separators=(",", ":")).encode()
        tampered = struct.pack(">2sBI", MAGIC, WIRE_VERSION, len(raw)) + raw
        decoded = decode_frame(tampered)
        assert decoded.error is not None
        assert decoded.error.code == "bad-frame"
        assert decoded.error.src == "c1!deleg"  # attributable to the sender

    def test_garbage_never_raises(self):
        for data in (b"", b"\x00" * 3, b"not a frame", b"RT\x07" + b"\xff" * 10):
            assert decode_frame(data).error is not None

    def test_deleg_endpoint_naming(self):
        assert deleg_owner(deleg_endpoint("c1")) == "c1"
        assert deleg_owner("c1") is None


class TestMembership:
    def test_k2_cap_is_two(self):
        assert K2_MAX_HOPS == MAX_DELEGATION_HOPS == 2

    def test_downstream_tier_needs_anchors(self):
        with pytest.raises(SimulationError):
            TierSpec(
                name="t",
                stratum=1,
                processors=("a", "b"),
                links=(("a", "b"),),
                border="a",
            )

    def test_core_has_no_anchors(self):
        with pytest.raises(SimulationError):
            TierSpec(
                name="core",
                stratum=0,
                processors=("a", "b"),
                links=(("a", "b"),),
                anchors=("x",),
            )

    def test_only_border_re_exports(self):
        with pytest.raises(SimulationError):
            TierSpec(
                name="t",
                stratum=1,
                processors=("a", "b"),
                links=(("a", "b"),),
                border="a",
                anchors=("c1",),
                exports=("b",),
            )

    def test_federation_needs_exactly_one_core(self):
        with pytest.raises(SimulationError):
            FederationSpec(tiers=(_downstream(),))
        core2 = TierSpec(
            name="core2",
            stratum=0,
            processors=("d0", "d1"),
            links=(("d0", "d1"),),
        )
        with pytest.raises(SimulationError):
            FederationSpec(tiers=(_core(), core2))

    def test_anchors_must_be_upstream_exports(self):
        bad = TierSpec(
            name="tier1",
            stratum=1,
            processors=("t1n0", "t1n1"),
            links=(("t1n0", "t1n1"),),
            border="t1n0",
            anchors=("c0",),  # c0 is a core member but not an export
        )
        with pytest.raises(SimulationError):
            FederationSpec(tiers=(_core(), bad))

    def test_hop_distance_crosses_tiers(self):
        spec = _federation_spec()
        # t1n1 - t1n0 - c1 - c0: intra-tier links plus the border-anchor edge
        assert spec.hop_distance("t1n1", "t1n0") == 1
        assert spec.hop_distance("t1n0", "c1") == 1
        assert spec.hop_distance("t1n1", "c0") == 3
        assert spec.hop_distance("c0", "c0") == 0

    def test_spec_round_trips_through_dict(self):
        spec = _federation_spec(tiers=2)
        assert FederationSpec.from_dict(spec.to_dict()) == spec

    def test_peer_directory(self):
        directory = PeerDirectory()
        directory.register("c0", tier="core")
        directory.register("c0!deleg", tier="core")
        directory.register("t1n0", tier="tier1")
        with pytest.raises(SimulationError):
            directory.register("c0", tier="core")  # duplicates are bugs
        assert directory.tier_of("c0") == "core"
        assert directory.members("core") == ("c0", "c0!deleg")
        directory.update_address("t1n0", "127.0.0.1", 4242)
        assert directory.address_of("t1n0") == ("127.0.0.1", 4242)
        assert "t1n0" in directory and "ghost" not in directory


class TestComposeDelegated:
    DRIFT = DriftSpec(alpha=1.0 - 200e-6, beta=1.0 + 200e-6)

    def _delegated(self, lower, upper, anchor_lt):
        return DelegatedBound(
            bound=ClockBound(lower, upper),
            anchor_lt=anchor_lt,
            anchor_rt=anchor_lt,
            hops=1,
            stratum=0,
            anchor="c1",
            degraded=False,
        )

    def test_forward_advance_uses_drift_envelope(self):
        delegated = self._delegated(10.0, 10.1, anchor_lt=5.0)
        out = compose_delegated(ClockBound(6.0, 6.2), delegated, self.DRIFT)
        alpha, beta = self.DRIFT.alpha, self.DRIFT.beta
        assert out.lower == pytest.approx(10.0 + alpha * 1.0)
        assert out.upper == pytest.approx(10.1 + beta * 1.2)
        assert out.lower <= out.upper

    def test_backward_delta_flips_rates(self):
        # an internal lower endpoint may precede the anchor instant; the
        # pessimistic advance then uses the *fast* rate going backwards
        delegated = self._delegated(10.0, 10.1, anchor_lt=5.0)
        out = compose_delegated(ClockBound(4.5, 4.8), delegated, self.DRIFT)
        alpha, beta = self.DRIFT.alpha, self.DRIFT.beta
        assert out.lower == pytest.approx(10.0 + beta * (-0.5))
        assert out.upper == pytest.approx(10.1 + alpha * (-0.2))
        assert out.lower <= out.upper

    def test_never_inverts(self):
        delegated = self._delegated(100.0, 100.05, anchor_lt=50.0)
        for low in (40.0, 49.99, 50.0, 61.5):
            for width in (0.0, 0.01, 5.0):
                out = compose_delegated(
                    ClockBound(low, low + width), delegated, self.DRIFT
                )
                assert out.lower <= out.upper

    def test_sound_against_simulated_truth(self):
        # simulate: source runs at rt; border clock runs at a fixed rate
        # inside the advertised envelope.  Any (delegated, internal) pair
        # built from that ground truth must compose to a containing bound.
        rate = 1.0 + 150e-6  # within DriftSpec(rho=200e-6)
        for anchor_rt in (3.0, 7.5):
            anchor_lt = anchor_rt * rate
            delegated = self._delegated(anchor_rt - 0.02, anchor_rt + 0.03, anchor_lt)
            for sample_rt in (anchor_rt - 1.0, anchor_rt, anchor_rt + 2.0):
                lt = sample_rt * rate
                internal = ClockBound(lt - 0.01, lt + 0.01)
                out = compose_delegated(internal, delegated, self.DRIFT)
                assert out.contains(sample_rt, tolerance=1e-9)

    def test_unbounded_inputs_stay_honest(self):
        delegated = self._delegated(10.0, 10.1, anchor_lt=5.0)
        assert not compose_delegated(ClockBound.unbounded(), delegated, self.DRIFT).is_bounded
        assert not compose_delegated(ClockBound(1.0, 1.1), None, self.DRIFT).is_bounded


class TestDelegationServerUnit:
    """The synchronous receive core, no event loop needed."""

    def _server(self, **kwargs):
        config = ClusterConfig(
            processors=("n0", "n1", "n2"),
            links=(("n0", "n1"), ("n1", "n2")),
            retransmit=FAST_RETRANSMIT,
        )
        node = Node(
            NodeConfig(proc="n1", spec=build_spec(config), retransmit=FAST_RETRANSMIT),
            LoopbackTransport(),  # not started: sends are no-ops
            clock=MonotonicClockSource(),
            time_base=TimeBase(),
        )
        server = DelegationServer(node, **{"stratum": 0, **kwargs})
        # unit tests drive the sync core directly, without start()
        node._running = True
        server._running = True
        return server

    def _dreq(self, server, nonce=0):
        return encode_frame(dreq_frame("t1n0!anchor", server.endpoint, nonce))

    def test_downstream_server_requires_bound_source(self):
        with pytest.raises(SimulationError):
            self._server(stratum=1)

    def test_garbage_counted_never_raised(self):
        server = self._server()
        assert server.handle_dreq_bytes(b"junk") is None
        assert server.stats.decode_errors == 1

    def test_misaddressed_and_wrong_type_rejected(self):
        server = self._server()
        wrong_dst = encode_frame(dreq_frame("t1n0!anchor", "c9!deleg", 0))
        assert server.handle_dreq_bytes(wrong_dst) is None
        not_dreq = encode_frame(
            deleg_frame("x", server.endpoint, 0, ClockBound(1.0, 2.0), hops=1, stratum=0)
        )
        assert server.handle_dreq_bytes(not_dreq) is None
        assert server.stats.rejected_frames == 2
        assert server.stats.dreqs == 0

    def test_down_node_drops_request(self):
        server = self._server()
        server.node._running = False
        assert server.handle_dreq_bytes(self._dreq(server)) is None
        assert server.stats.dropped_down == 1

    def test_unsynced_estimator_sheds(self):
        server = self._server()  # fresh estimator: honestly unbounded
        answer = server.handle_dreq_bytes(self._dreq(server, nonce=5))
        decoded = decode_frame(answer)
        assert decoded.error is None
        assert decoded.frame.type == "shed"
        assert decoded.frame.reason == "unsynced"
        assert decoded.frame.nonce == 5
        assert server.stats.shed_total == 1

    def test_bound_source_serves_at_k2_hops(self):
        server = self._server(
            stratum=1, bound_source=lambda: (ClockBound(5.0, 5.2), False, 0.05)
        )
        decoded = decode_frame(server.handle_dreq_bytes(self._dreq(server)))
        assert decoded.error is None
        frame = decoded.frame
        assert frame.type == "deleg"
        assert frame.hops == MAX_DELEGATION_HOPS  # a re-export is 2 hops
        assert frame.stratum == 1
        assert frame.bound == ClockBound(5.0, 5.2)
        assert server.stats.replies == 1

    def test_stale_bound_source_sheds(self):
        server = self._server(stratum=1, bound_source=lambda: None)
        decoded = decode_frame(server.handle_dreq_bytes(self._dreq(server)))
        assert decoded.frame.type == "shed"
        assert decoded.frame.reason == "unsynced"


class TestAnchorLinkUnit:
    def _link(self, anchors=("c1", "c2")):
        return AnchorLink(
            AnchorLinkConfig(border="t1n0", anchors=anchors),
            LoopbackTransport(),
            TimeBase(),
            tier="tier1",
        )

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            AnchorLinkConfig(border="b", anchors=())
        with pytest.raises(SimulationError):
            AnchorLinkConfig(border="b", anchors=("b", "c"))
        with pytest.raises(SimulationError):
            AnchorLinkConfig(border="b", anchors=("c", "c"))

    def test_election_rotates_succession(self):
        link = self._link()
        assert link.anchor == "c1"
        link._elect()
        assert link.anchor == "c2"
        link._elect()
        assert link.anchor == "c1"  # wraps around the candidate list
        assert link.stats.elections == 2
        assert [(e.previous, e.new) for e in link.elections] == [
            ("c1", "c2"),
            ("c2", "c1"),
        ]
        assert all(e.tier == "tier1" and e.border == "t1n0" for e in link.elections)

    def test_single_candidate_never_elects(self):
        link = self._link(anchors=("c1",))
        for _ in range(20):
            link._on_timeout()
        assert link.stats.elections == 0
        assert link.stats.timeouts == 20

    def test_current_expires_after_max_age(self):
        link = self._link()
        stale_lt = link._now()[1] - link.config.max_age - 1.0
        link.adopted = DelegatedBound(
            bound=ClockBound(1.0, 1.1),
            anchor_lt=stale_lt,
            anchor_rt=stale_lt,
            hops=1,
            stratum=0,
            anchor="c1",
            degraded=False,
        )
        assert link.current() is None
        assert link.composed_now() is None
        assert link.stats.stale_refusals == 2


class TestGradientScorecard:
    def _samples(self, offsets, rts=(0.1, 0.3, 0.5, 0.7)):
        return [
            EstimateSample(
                rt=rt,
                proc=proc,
                channel="strata",
                bound=ClockBound(rt + off, rt + off),
                truth=rt,
            )
            for proc, off in offsets.items()
            for rt in rts
        ]

    def test_skew_buckets_by_hop_distance(self):
        spec = _federation_spec()
        samples = self._samples({"c0": 0.0, "c1": 0.004, "t1n1": 0.01})
        card = gradient_scorecard(spec, samples)
        rows = {(row["a"], row["b"]): row for row in card["pairs"]}
        near = rows[("c0", "c1")]
        far = rows[("c0", "t1n1")]
        assert near["hops"] == 1 and far["hops"] == 3
        assert near["mean_skew"] == pytest.approx(0.004)
        assert far["mean_skew"] == pytest.approx(0.01)
        assert "1" in card["by_hops"] and "3" in card["by_hops"]

    def test_unmatched_pairs_excluded_from_aggregates(self):
        spec = _federation_spec()
        # t1n0 never produces a bounded sample: its pairs carry samples=0
        samples = self._samples({"c0": 0.0, "c1": 0.002})
        card = gradient_scorecard(spec, samples)
        rows = {(row["a"], row["b"]): row for row in card["pairs"]}
        assert rows[("c0", "t1n0")]["samples"] == 0
        buckets = card["by_hops"]
        assert sum(bucket["pairs"] for bucket in buckets.values()) == 1

    def test_matching_respects_max_gap(self):
        spec = _federation_spec()
        samples = self._samples({"c0": 0.0}, rts=(0.1,)) + self._samples(
            {"c1": 0.005}, rts=(5.0,)
        )
        card = gradient_scorecard(spec, samples, max_gap=0.5)
        rows = {(row["a"], row["b"]): row for row in card["pairs"]}
        assert rows[("c0", "c1")]["samples"] == 0


class TestLoopbackFederation:
    def test_converges_sound_with_delegated_bounds(self):
        result = run_federation_sync(_federation_config())
        assert not result.aborted
        assert result.soundness_violations() == []
        tier1 = result.tier("tier1")
        external = [s for s in tier1.run.samples if s.channel == "strata"]
        assert sum(1 for s in external if s.bound.is_bounded) > 0
        assert tier1.anchor_stats.adopted > 0
        core = result.tier("core")
        assert sum(s.replies for s in core.delegation_stats.values()) > 0
        # the K2 discipline held end to end: only 1- or 2-hop bounds exist
        assert MAX_DELEGATION_HOPS == 2

    def test_anchor_crash_triggers_reelection_and_reconvergence(self):
        crash_at = 0.8
        result = run_federation_sync(
            _federation_config(
                duration=2.5,
                crashes=(CrashSchedule(proc="c1", stop_at=crash_at),),
                sync_period=0.1,
                probe_timeout=0.1,
                max_age=0.8,
                seed=7,
            )
        )
        assert result.soundness_violations() == []
        assert len(result.elections) >= 1
        assert all(event.previous == "c1" for event in result.elections)
        for proc in result.spec.tier("tier1").processors:
            lag, examined = result.reconvergence_after(crash_at, proc)
            assert math.isfinite(lag) and examined > 0

    def test_document_archives_and_reloads(self, tmp_path):
        result = run_federation_sync(_federation_config(duration=1.5))
        path = tmp_path / "federation.json"
        dump_federation(result, str(path))
        spec, trace, samples = load_run(str(path))
        assert set(spec.processors) == set(result.spec.all_processors)
        assert len(trace) == len(result.merged_trace())
        assert len(samples) == len(result.samples)
        document = json.loads(path.read_text())
        strata = document["strata"]
        assert {row["name"] for row in strata["tiers"]} == {"core", "tier1"}
        assert "by_hops" in strata["gradient"]
        assert document.get("partial") is None  # clean run: no partial flag


class TestEmptySampleSentinels:
    def test_reconvergence_after_without_evidence(self):
        result = run_federation_sync(_federation_config(duration=1.0))
        # a cutoff past the run's end leaves zero tail samples: the
        # documented sentinel is (inf, 0), never a raise
        lag, examined = result.reconvergence_after(99.0, "t1n1")
        assert math.isinf(lag) and examined == 0

    def test_percentile_of_nothing_is_none(self):
        assert percentile([], 0.99) is None
        assert percentile([3.0], 0.5) == 3.0
