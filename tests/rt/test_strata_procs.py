"""The federation spanning real OS processes over real UDP sockets.

Load-bearing assertions:

* ``run_federation_procs`` runs the core in-process and each downstream
  tier in a subprocess, handshakes addresses over stdio, and merges the
  children's evidence into one sound document;
* every tier's merged trace + final estimates pass the same independent
  oracle checks (soundness and Theorem 2.1 optimality) as an in-process
  run - the child's estimators lose nothing in the stdio round trip;
* the ``repro-strata`` CLI honours the clean-death contract under
  ``--procs``: SIGINT yields exit 130 and a ``"partial": true`` archive.

Durations are short; the SIGINT test interrupts a deliberately long run.
"""

import json
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.rt.strata import FederationConfig, FederationSpec, TierSpec, run_federation_sync
from repro.testing.oracle import oracle_causal_past, oracle_external_bounds

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def _assert_oracle_parity(spec, trace, final_bounds, *, tol=1e-6):
    """Soundness + Theorem 2.1 optimality of one tier's finished run."""
    events = [record.event for record in trace]
    rt_of = {record.event.eid: record.rt for record in trace}
    last = {}
    for event in events:
        prev = last.get(event.proc)
        if prev is None or event.seq > prev.seq:
            last[event.proc] = event
    assert last, "tier trace is empty"
    for proc, event in last.items():
        past = oracle_causal_past(events, event.eid)
        oracle = oracle_external_bounds(past, spec, event.eid)
        assert oracle.contains(rt_of[event.eid], tolerance=tol), (
            f"oracle bound {oracle} at {event.eid} excludes rt {rt_of[event.eid]}"
        )
        if proc in final_bounds:
            ours = final_bounds[proc]
            assert ours.lower == pytest.approx(oracle.lower, abs=tol)
            if math.isinf(oracle.upper):
                assert math.isinf(ours.upper)
            else:
                assert ours.upper == pytest.approx(oracle.upper, abs=tol)


def _two_tier_config(**overrides) -> FederationConfig:
    spec = FederationSpec(
        tiers=(
            TierSpec(
                name="core",
                stratum=0,
                processors=("c0", "c1", "c2"),
                links=(("c0", "c1"), ("c1", "c2"), ("c0", "c2")),
                exports=("c1", "c2"),
            ),
            TierSpec(
                name="tier1",
                stratum=1,
                processors=("t1n0", "t1n1"),
                links=(("t1n0", "t1n1"),),
                border="t1n0",
                anchors=("c1", "c2"),
            ),
        )
    )
    defaults = dict(
        spec=spec,
        duration=3.0,
        gossip_period=0.05,
        sample_period=0.15,
        transport="udp",
        clock_plans={
            "c1": {"kind": "skewed", "rate": 1.0 + 120e-6},
            "t1n1": {"kind": "skewed", "rate": 1.0 - 150e-6, "offset": 0.2},
        },
        sync_period=0.1,
        probe_timeout=0.25,
        seed=11,
    )
    defaults.update(overrides)
    return FederationConfig(**defaults)


class TestFederationAcrossProcesses:
    def test_two_tiers_two_processes_sound_with_parity(self):
        result = run_federation_sync(_two_tier_config(), processes=True)
        assert not result.aborted
        assert result.soundness_violations() == []

        # the downstream tier, running in its own OS process, adopted
        # upstream bounds over real UDP and produced bounded externals
        tier1 = result.tier("tier1")
        external = [s for s in tier1.run.samples if s.channel == "strata"]
        assert external, "child tier evidence did not survive the stdio trip"
        assert sum(1 for s in external if s.bound.is_bounded) > 0
        assert tier1.anchor_stats.adopted > 0
        assert tier1.elections == []

        # per-tier Theorem 2.1 parity over the merged document's traces:
        # each tier is internally optimal against its own spec, whether
        # its run happened here or in a child process
        for tier in result.tiers:
            assert tier.final_bounds, f"{tier.name} shipped no final bounds"
            _assert_oracle_parity(tier.run.spec, tier.run.trace, tier.final_bounds)

        # the merged trace interleaves both tiers chronologically
        merged = result.merged_trace()
        assert len(merged) == sum(len(t.run.trace) for t in result.tiers)
        rts = [record.rt for record in merged]
        assert rts == sorted(rts)


class TestStrataCliCleanDeath:
    def test_sigint_exits_130_with_partial_archive(self, tmp_path):
        out = tmp_path / "interrupted.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.rt.strata.cli",
                "--procs",
                "--transport",
                "udp",
                "--core-nodes",
                "3",
                "--tiers",
                "1",
                "--tier-nodes",
                "2",
                "--duration",
                "30",
                "--sync-period",
                "0.1",
                "--out",
                str(out),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            start_new_session=True,  # pytest's own Ctrl-C must not reach it
        )
        try:
            time.sleep(5.0)  # let the handshake finish and sampling start
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=30)
        except Exception:
            proc.kill()
            proc.communicate()
            raise
        assert proc.returncode == 130, (
            f"exit {proc.returncode};\nstdout: {stdout.decode()!r}\n"
            f"stderr: {stderr.decode()!r}"
        )
        document = json.loads(out.read_text())
        assert document["partial"] is True
        assert {row["name"] for row in document["strata"]["tiers"]} == {
            "core",
            "tier1",
        }
