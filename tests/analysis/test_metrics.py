"""Tests for estimate-quality metrics."""

import math

import pytest

from repro.analysis import dominance_check, soundness_summary, width_stats
from repro.core import ClockBound
from repro.sim import EstimateSample


def sample(rt, proc, channel, lower, upper, truth=None):
    return EstimateSample(
        rt=rt,
        proc=proc,
        channel=channel,
        bound=ClockBound(lower, upper),
        truth=rt if truth is None else truth,
    )


class TestWidthStats:
    def test_empty(self):
        stats = width_stats([])
        assert stats.count == 0
        assert math.isinf(stats.mean)

    def test_unbounded_excluded(self):
        stats = width_stats(
            [
                sample(1.0, "a", "x", 0.0, 2.0),
                sample(2.0, "a", "x", -math.inf, math.inf),
            ]
        )
        assert stats.count == 2
        assert stats.bounded == 1
        assert stats.mean == pytest.approx(2.0)

    def test_distribution(self):
        widths = [1.0, 2.0, 3.0, 4.0, 100.0]
        samples = [sample(i, "a", "x", 0.0, w) for i, w in enumerate(widths)]
        stats = width_stats(samples)
        assert stats.mean == pytest.approx(22.0)
        assert stats.median == pytest.approx(3.0)
        assert stats.max == pytest.approx(100.0)
        assert stats.p95 == pytest.approx(100.0)


class TestSoundnessSummary:
    def test_counts_by_channel(self):
        samples = [
            sample(5.0, "a", "x", 4.0, 6.0),          # sound
            sample(5.0, "a", "x", 6.0, 7.0),          # unsound
            sample(5.0, "a", "y", 4.9, 5.1),          # sound
        ]
        summary = soundness_summary(samples)
        assert summary["x"] == (2, 1)
        assert summary["y"] == (1, 0)


class TestDominance:
    def test_counts_strictly_tighter(self):
        samples = [
            sample(1.0, "a", "opt", 0.0, 2.0),
            sample(1.0, "a", "other", 0.5, 1.5),  # tighter: a win
            sample(2.0, "a", "opt", 0.0, 1.0),
            sample(2.0, "a", "other", 0.0, 1.0),  # equal: not a win
            sample(3.0, "a", "opt", 0.0, 1.0),
            sample(3.0, "a", "other", -math.inf, math.inf),  # unbounded ignored
        ]
        wins = dominance_check(samples, "opt", ["other"])
        assert wins == {"other": 1}

    def test_missing_optimal_skipped(self):
        samples = [sample(1.0, "a", "other", 0.0, 1.0)]
        assert dominance_check(samples, "opt", ["other"]) == {"other": 0}


class TestConvergence:
    def test_convergence_time(self):
        from repro.analysis import convergence_time

        samples = [
            sample(10.0, "a", "x", 0.0, 5.0),
            sample(20.0, "a", "x", 0.0, 0.5),
            sample(30.0, "a", "x", 0.0, 0.1),
        ]
        assert convergence_time(samples, threshold=1.0) == 20.0
        assert convergence_time(samples, threshold=0.01) is None

    def test_fraction_within(self):
        from repro.analysis import fraction_within

        samples = [
            sample(1.0, "a", "x", 0.0, 0.5),
            sample(2.0, "a", "x", 0.0, 2.0),
            sample(3.0, "a", "x", 0.0, 0.2),
            sample(4.0, "a", "x", -math.inf, math.inf),
        ]
        assert fraction_within(samples, threshold=1.0) == pytest.approx(0.5)
        assert fraction_within([], threshold=1.0) == 0.0


class TestMidpointError:
    def test_stats(self):
        from repro.analysis import midpoint_error_stats

        samples = [
            sample(10.0, "a", "x", 9.0, 11.0),    # midpoint 10, error 0
            sample(20.0, "a", "x", 21.0, 23.0),   # midpoint 22, error 2
            sample(30.0, "a", "x", -math.inf, math.inf),  # skipped
        ]
        stats = midpoint_error_stats(samples)
        assert stats.count == 2
        assert stats.mean_abs == pytest.approx(1.0)
        assert stats.max_abs == pytest.approx(2.0)
        assert stats.rms == pytest.approx(math.sqrt(2.0))

    def test_empty(self):
        from repro.analysis import midpoint_error_stats

        stats = midpoint_error_stats([])
        assert stats.count == 0
        assert math.isinf(stats.mean_abs)

    def test_optimal_midpoint_competitive_on_run(self, line4_run):
        """On a real run, the optimal midpoint's error is far below the
        interval width (the certified bound is not wasteful)."""
        from repro.analysis import midpoint_error_stats, width_stats

        samples = line4_run.samples_for("efficient", proc="p3")
        errors = midpoint_error_stats(samples)
        widths = width_stats(samples)
        assert errors.mean_abs <= widths.mean / 2 + 1e-12
