"""Tests for the table renderer."""

import math

from repro.analysis import format_value, render_markdown_table, render_table


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_floats(self):
        assert format_value(0.0) == "0"
        assert format_value(1.5) == "1.5"
        assert format_value(math.inf) == "inf"
        assert format_value(-math.inf) == "-inf"
        assert format_value(float("nan")) == "nan"
        assert "e" in format_value(1234567.0)
        assert "e" in format_value(0.00001)

    def test_strings_and_ints(self):
        assert format_value("abc") == "abc"
        assert format_value(42) == "42"


class TestRenderTable:
    def test_empty(self):
        assert "(no rows)" in render_table([])
        assert "title" in render_table([], title="title")

    def test_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        out = render_table(rows)
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) <= len(lines[0]) + 10 for line in lines)
        assert "222" in out

    def test_column_order_inferred(self):
        rows = [{"z": 1, "a": 2}]
        out = render_table(rows)
        assert out.splitlines()[0].index("z") < out.splitlines()[0].index("a")

    def test_explicit_columns_and_missing_cells(self):
        rows = [{"a": 1}, {"b": 2}]
        out = render_table(rows, columns=["a", "b"])
        assert "a" in out and "b" in out

    def test_title(self):
        out = render_table([{"a": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"


class TestRenderMarkdown:
    def test_structure(self):
        rows = [{"a": 1, "b": 2}]
        out = render_markdown_table(rows)
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2] == "| 1 | 2 |"

    def test_empty(self):
        assert render_markdown_table([]) == "(no rows)"
