"""Tests for the ASCII plotting helpers."""

import math

import pytest

from repro.analysis import ascii_plot, histogram, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_rises(self):
        out = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(out) == 4
        assert out[0] == " " and out[-1] == "@"

    def test_bucketing_respects_width(self):
        out = sparkline(list(range(1000)), width=50)
        assert len(out) == 50

    def test_infinite_values_render_top_block(self):
        out = sparkline([1.0, math.inf, 1.0], width=3)
        assert out[1] == "@"

    def test_all_zero(self):
        out = sparkline([0.0, 0.0], width=2)
        assert out == "  "


class TestAsciiPlot:
    def test_empty(self):
        assert "no finite points" in ascii_plot([])

    def test_dimensions(self):
        out = ascii_plot([(0, 0), (1, 1)], width=20, height=5)
        lines = out.splitlines()
        assert len(lines) == 5 + 3  # canvas + y header + axis + x footer
        assert all(len(line) <= 22 for line in lines)

    def test_corners_marked(self):
        out = ascii_plot([(0, 0), (10, 10)], width=10, height=4, marker="o")
        lines = out.splitlines()
        assert lines[1].endswith("o")  # top-right: max x, max y
        assert lines[4].startswith("|o")  # bottom-left

    def test_axis_ranges_labelled(self):
        out = ascii_plot([(2, 5), (4, 9)], x_label="L", y_label="cost")
        assert "L: [2, 4]" in out
        assert "cost: [5, 9]" in out

    def test_nonfinite_dropped(self):
        out = ascii_plot([(0, 0), (1, math.inf), (2, 2)])
        assert "[0, 2]" in out


class TestHistogram:
    def test_empty(self):
        assert "no finite values" in histogram([])

    def test_counts_sum(self):
        values = [1.0] * 5 + [2.0] * 3
        out = histogram(values, bins=2)
        assert " 5" in out and " 3" in out

    def test_bin_count(self):
        out = histogram(list(range(100)), bins=7)
        assert len(out.splitlines()) == 7

    def test_single_value(self):
        out = histogram([3.0, 3.0], bins=4)
        assert "2" in out
