"""Tests for the text space-time diagram renderer."""

import pytest

from repro.analysis import spacetime_diagram
from repro.sim.trace import ExecutionTrace

from ..conftest import make_event, recv, send


def small_trace():
    trace = ExecutionTrace()
    s1 = send("a", 0, 1.0, dest="b")
    trace.record(s1, 0.5)
    trace.record(recv("b", 0, 4.1, s1), 0.8)
    s2 = send("b", 1, 4.5, dest="a")
    trace.record(s2, 1.2)
    trace.record(make_event("a", 1, 2.0), 1.5)
    return trace, s2


class TestSpacetimeDiagram:
    def test_empty(self):
        assert "empty" in spacetime_diagram(ExecutionTrace())

    def test_columns_and_cells(self):
        trace, _s2 = small_trace()
        out = spacetime_diagram(trace)
        lines = out.splitlines()
        assert lines[0].startswith("rt")
        assert "a" in lines[0] and "b" in lines[0]
        assert "s#0 >b" in out
        assert "r#0 <a#0" in out
        assert "i#1" in out

    def test_lost_marker(self):
        trace, s2 = small_trace()
        trace.record_lost(s2.eid)
        out = spacetime_diagram(trace, column_width=24)
        assert "LOST" in out

    def test_window_and_ellipses(self):
        trace, _ = small_trace()
        out = spacetime_diagram(trace, start=1, limit=2)
        assert "(1 earlier events)" in out
        assert "(1 later events)" in out

    def test_show_lt(self):
        trace, _ = small_trace()
        out = spacetime_diagram(trace, show_lt=True, column_width=26)
        assert "@1.000" in out

    def test_proc_filter(self):
        trace, _ = small_trace()
        out = spacetime_diagram(trace, procs=["a"])
        assert "r#0" not in out  # b's receive filtered out

    def test_on_real_run(self, line4_run):
        out = spacetime_diagram(line4_run.trace, limit=30)
        assert len(out.splitlines()) >= 30
