"""Tests for the executable claim checkers."""

import pytest

from repro.analysis import (
    check_execution_satisfies_spec,
    check_optimal_equals_full,
    check_report_once,
    check_soundness,
    check_tightness,
)
from repro.analysis.claims import ClaimCheck


class TestClaimCheck:
    def test_str_renders_verdict(self):
        check = ClaimCheck("thing", True, {"k": 1})
        assert "[PASS]" in str(check)
        assert "k=1" in str(check)
        assert "[FAIL]" in str(ClaimCheck("thing", False))


class TestCheckersOnCleanRun:
    def test_soundness_passes(self, line4_run):
        check = check_soundness(line4_run, ("efficient", "full"))
        assert check.passed
        assert check.details["violations"] == 0

    def test_execution_satisfies_spec(self, line4_run):
        assert check_execution_satisfies_spec(line4_run).passed

    def test_optimal_equals_full(self, line4_run):
        check = check_optimal_equals_full(line4_run)
        assert check.passed, check.details

    def test_tightness(self, line4_run):
        check = check_tightness(line4_run)
        assert check.passed, check.details
        assert check.details["endpoints_checked"] >= 2

    def test_report_once(self, line4_run):
        check = check_report_once(line4_run)
        assert check.passed
        assert check.details["max_reports_per_event_direction"] == 1

    def test_report_once_requires_tracking(self, ring5_random_run):
        check = check_report_once(ring5_random_run)
        assert not check.passed
        assert "tracking disabled" in check.details["reason"]

    def test_optimal_equals_full_wrong_types(self, line4_run):
        with pytest.raises(TypeError):
            check_optimal_equals_full(
                line4_run, efficient_channel="full", full_channel="efficient"
            )
