"""Tests for complexity accounting and the log-log slope helper."""

import pytest

from repro.analysis import collect_complexity, loglog_slope


class TestCollectComplexity:
    def test_report_fields(self, line4_run):
        report = collect_complexity(line4_run)
        assert report.n_processors == 4
        assert report.n_links == 3
        assert report.diameter == 3
        assert report.events_total == len(line4_run.trace)
        assert report.max_live_points_csa >= 4
        assert report.max_agdp_nodes >= report.max_live_points_csa - 1
        assert report.k1_relative_speed >= 1
        assert report.k1_link_send_speed >= 1
        assert report.k2_link_asymmetry >= 1

    def test_paper_bounds_hold(self, line4_run):
        report = collect_complexity(line4_run)
        verdicts = report.bounds_hold()
        assert all(verdicts.values()), verdicts

    def test_wrong_channel_type(self, line4_run):
        with pytest.raises(TypeError):
            collect_complexity(line4_run, channel="full")


class TestLogLogSlope:
    def test_linear_data(self):
        xs = [1, 2, 4, 8]
        ys = [3, 6, 12, 24]
        assert loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_quadratic_data(self):
        xs = [1, 2, 4, 8]
        ys = [x * x for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 0], [1, 2])

    def test_requires_varying_x(self):
        with pytest.raises(ValueError):
            loglog_slope([2, 2], [1, 2])
