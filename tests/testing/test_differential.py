"""The differential driver: clean runs, mutation smoke, corpus machinery.

The bulk properties here (reliable / lossy / Byzantine / numpy-backend)
are the PR's conformance sweep: under the ``ci`` profile they replay well
over 500 generated schedules through every implementation path and the
oracles, asserting zero divergences.  The mutation tests then prove the
sweep *can* fail: a deliberately GC-broken estimator must be flagged,
minimized, and archived.
"""

import dataclasses

import pytest
from hypothesis import given

from repro.core import EfficientCSA
from repro.sim.schedule import Schedule, TamperSpec
from repro.testing import (
    broken_gc_factory,
    check_schedule,
    load_corpus_entry,
    minimize_schedule,
    repro_script,
    run_differential,
    write_corpus_entry,
)
from repro.testing.strategies import schedules

# -- the conformance sweep -------------------------------------------------------------


@given(schedules(min_steps=5, max_steps=30))
def test_differential_reliable(schedule):
    report = run_differential(schedule)
    assert report.ok, report.describe()


@given(schedules(min_steps=5, max_steps=35, lossy=True))
def test_differential_lossy(schedule):
    report = run_differential(schedule)
    assert report.ok, report.describe()


@given(schedules(min_procs=3, max_procs=5, min_steps=8, max_steps=35, tamper=True))
def test_differential_byzantine(schedule):
    report = run_differential(schedule)
    assert report.ok, report.describe()


@given(schedules(min_steps=5, max_steps=25))
def test_differential_numpy_backend(schedule):
    report = run_differential(
        schedule,
        estimator_factory=lambda p, s: EfficientCSA(p, s, agdp_backend="numpy"),
    )
    assert report.ok, report.describe()


# -- mutation smoke: the driver must catch a broken estimator --------------------------

#: The in-flight-send shape the forgetful tracker garbage-collects away.
MUTANT_TRIGGER = Schedule(
    rates=(1.0, 1.002),
    edges=((0, 1),),
    steps=(
        ("send", 1, 0, 0.5),
        ("send", 0, 1, 0.2),
        ("deliver", 0, 1, 0.3),
        ("deliver", 1, 0, 0.4),
        ("send", 0, 1, 0.1),
        ("deliver", 0, 1, 0.2),
    ),
)


def _mutant_factory(proc, spec):
    return broken_gc_factory(proc, spec, reliable=True)


def test_mutation_smoke_broken_gc_is_flagged():
    report = run_differential(MUTANT_TRIGGER, estimator_factory=_mutant_factory)
    assert not report.ok
    assert {d.kind for d in report.divergences} & {"live-set", "gc-distance", "crash"}


@given(schedules(min_steps=10, max_steps=30))
def test_mutation_smoke_within_default_budget(schedule):
    """Hypothesis finds the mutant without a hand-built trigger.

    Not every random schedule tickles the bug (a message must be in
    flight across another local event), so the property asserts one-sided
    correctness - whenever the mutant diverges it is for the right
    reason - while the deterministic trigger above guarantees detection.
    """
    report = run_differential(
        schedule, estimator_factory=_mutant_factory, check_determinism=False
    )
    if not report.ok:
        assert {d.kind for d in report.divergences} <= {
            "live-set",
            "gc-distance",
            "optimality",
            "reference",
            "crash",
        }


def test_minimization_shrinks_the_trigger():
    def diverges(candidate):
        return not run_differential(
            candidate, estimator_factory=_mutant_factory
        ).ok

    minimized = minimize_schedule(MUTANT_TRIGGER, diverges)
    assert diverges(minimized)
    assert len(minimized.steps) < len(MUTANT_TRIGGER.steps)
    assert minimized.rates == (1.0, 1.0)  # rate flattening applied


def test_check_schedule_archives_and_raises(tmp_path):
    corpus = tmp_path / "corpus"
    with pytest.raises(AssertionError) as excinfo:
        check_schedule(
            MUTANT_TRIGGER, corpus_dir=corpus, estimator_factory=_mutant_factory
        )
    message = str(excinfo.value)
    assert "deterministic repro" in message
    assert "Schedule.from_json" in message
    entries = list(corpus.glob("*.json"))
    assert len(entries) == 1
    replayed = load_corpus_entry(entries[0])
    # the archived (minimized) schedule still reproduces the divergence
    assert not run_differential(
        replayed, estimator_factory=_mutant_factory
    ).ok
    # ... and is clean on the real estimator: a committed regression seed
    assert run_differential(replayed).ok


def test_check_schedule_is_quiet_on_clean_runs(tmp_path):
    report = check_schedule(MUTANT_TRIGGER, corpus_dir=tmp_path / "corpus")
    assert report.ok
    assert not (tmp_path / "corpus").exists()


# -- corpus entry format ---------------------------------------------------------------


def test_corpus_entry_round_trip(tmp_path):
    report = run_differential(MUTANT_TRIGGER)
    path = write_corpus_entry(report, tmp_path, label="seed", note="smoke")
    assert path.name.startswith("seed-")
    assert load_corpus_entry(path) == MUTANT_TRIGGER


def test_corpus_entry_rejects_unknown_format(tmp_path):
    report = run_differential(MUTANT_TRIGGER)
    path = write_corpus_entry(report, tmp_path)
    import json

    data = json.loads(path.read_text())
    data["format"] = 999
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="format"):
        load_corpus_entry(path)


def test_repro_script_executes_standalone():
    script = repro_script(MUTANT_TRIGGER)
    namespace = {}
    exec(compile(script, "<repro>", "exec"), namespace)  # clean on the real CSA
    assert namespace["report"].ok


# -- tamper plumbing -------------------------------------------------------------------


def test_tampered_schedule_round_trips_and_runs():
    schedule = dataclasses.replace(
        MUTANT_TRIGGER,
        tamper=TamperSpec(liar=1, modes=("lie",), magnitude=0.25, period=1),
    )
    assert Schedule.from_json(schedule.to_json()) == schedule
    report = run_differential(schedule)
    assert report.ok, report.describe()
