"""Differential tests: optimized hot paths vs the frozen reference oracles.

The indexed :class:`~repro.core.history.HistoryModule` and the compacted
:class:`~repro.core.agdp_numpy.NumpyAGDP` must be *observationally
identical* to the implementations they replaced
(:mod:`repro.testing.reference`).  These tests drive old and new side by
side with bit-identical inputs and diff every observable surface after
every operation:

* history - payload records and order, loss flags, ingest returns,
  buffer size and contents, watermarks, knowledge frontier, stats
  (Lemma 3.2 report-once and Lemma 3.3 bound ride on the stats);
* AGDP - distances over the live set, node sets, and the shared
  stats counters (``pair_updates`` intentionally excluded: the
  reference preserves the old full-block counting bug).

Schedules cover both reliable mode (Figure 2 verbatim) and unreliable
mode (delivery tokens, aborts, loss flags) on a 3-processor line
``a - b - c``, so the middle processor exercises lacking refcounts > 1.
"""

from __future__ import annotations

import itertools
import math
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NumpyAGDP
from repro.core.history import HistoryModule
from repro.testing import ReferenceHistoryModule, ReferenceNumpyAGDP

from ..conftest import make_event, recv, send
from ..core.test_agdp import agdp_scripts

PROCS = ("a", "b", "c")
NEIGHBORS = {"a": ("b",), "b": ("a", "c"), "c": ("b",)}
LINKS = (("a", "b"), ("b", "a"), ("b", "c"), ("c", "b"))


# -- schedule strategy -----------------------------------------------------------


def history_schedules():
    """Abstract op sequences; inapplicable ops are skipped deterministically."""
    op = st.one_of(
        st.tuples(st.just("internal"), st.sampled_from(PROCS)),
        st.tuples(st.just("send"), st.sampled_from(LINKS)),
        st.tuples(st.just("deliver"), st.sampled_from(LINKS)),
        st.tuples(st.just("drop"), st.sampled_from(LINKS)),
    )
    return st.lists(op, min_size=1, max_size=50)


def _assert_module_state_equal(new, ref):
    assert new.buffer_size() == ref.buffer_size()
    assert new.buffered_events() == ref.buffered_events()
    assert new.loss_flags == ref.loss_flags
    assert new.pending_tokens() == ref.pending_tokens()
    for w in PROCS:
        assert new.known_seq(w) == ref.known_seq(w)
        for u in new.neighbors:
            assert new.watermark(u, w) == ref.watermark(u, w)
    assert new.stats == ref.stats


def run_differential_schedule(ops, *, reliable, gc_enabled=True):
    """Drive HistoryModule and ReferenceHistoryModule through one schedule.

    In reliable mode a ``drop`` op is reinterpreted as ``deliver`` (the
    mode assumes no loss; silently discarding a payload whose watermarks
    already advanced would create a sequence gap by *harness* fiat, which
    neither module is specified to survive).
    """
    new = {
        p: HistoryModule(
            p, NEIGHBORS[p], reliable=reliable, track_reports=True, gc_enabled=gc_enabled
        )
        for p in PROCS
    }
    ref = {
        p: ReferenceHistoryModule(
            p, NEIGHBORS[p], reliable=reliable, track_reports=True, gc_enabled=gc_enabled
        )
        for p in PROCS
    }
    seq = {p: 0 for p in PROCS}
    clock = itertools.count()
    flights = {link: deque() for link in LINKS}

    for kind, arg in ops:
        if kind == "drop" and reliable:
            kind = "deliver"
        if kind == "internal":
            p = arg
            event = make_event(p, seq[p], float(next(clock)))
            seq[p] += 1
            new[p].record_local(event)
            ref[p].record_local(event)
        elif kind == "send":
            u, v = arg
            event = send(u, seq[u], float(next(clock)), dest=v)
            seq[u] += 1
            new[u].record_local(event)
            ref[u].record_local(event)
            payload_new, token_new = new[u].prepare_payload(v)
            payload_ref, token_ref = ref[u].prepare_payload(v)
            assert payload_new.records == payload_ref.records
            assert payload_new.loss_flags == payload_ref.loss_flags
            flights[(u, v)].append((event, payload_new, token_new, payload_ref, token_ref))
        elif kind == "deliver":
            u, v = arg
            if not flights[(u, v)]:
                continue
            event, payload_new, token_new, payload_ref, token_ref = flights[(u, v)].popleft()
            if not reliable:
                new[u].confirm_delivery(token_new)
                ref[u].confirm_delivery(token_ref)
            out_new = new[v].ingest_payload(u, payload_new)
            out_ref = ref[v].ingest_payload(u, payload_ref)
            assert out_new == out_ref
            receive = recv(v, seq[v], float(next(clock)), event)
            seq[v] += 1
            new[v].record_local(receive)
            ref[v].record_local(receive)
        else:  # drop, unreliable mode
            u, v = arg
            if not flights[(u, v)]:
                continue
            event, _pn, token_new, _pr, token_ref = flights[(u, v)].popleft()
            new[u].abort_delivery(token_new)
            ref[u].abort_delivery(token_ref)
            assert new[u].record_loss(event.eid) == ref[u].record_loss(event.eid)
        for p in PROCS:
            _assert_module_state_equal(new[p], ref[p])
    return new, ref


# -- history parity --------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(history_schedules())
def test_history_parity_reliable(ops):
    run_differential_schedule(ops, reliable=True)


@settings(max_examples=60, deadline=None)
@given(history_schedules())
def test_history_parity_unreliable(ops):
    run_differential_schedule(ops, reliable=False)


@settings(max_examples=30, deadline=None)
@given(history_schedules())
def test_history_parity_gc_disabled(ops):
    """The A2 ablation (no GC) must also match the old buffer growth."""
    run_differential_schedule(ops, reliable=True, gc_enabled=False)


def test_history_parity_dense_gossip():
    """A deterministic all-links schedule with heavy re-reporting pressure."""
    rounds = []
    for _ in range(6):
        for p in PROCS:
            rounds.append(("internal", p))
        for link in LINKS:
            rounds.append(("send", link))
        for link in LINKS:
            rounds.append(("deliver", link))
    run_differential_schedule(rounds, reliable=True)


def test_history_parity_loss_storm():
    """Unreliable mode with every other payload dropped and flags relayed."""
    ops = []
    for i in range(8):
        for link in LINKS:
            ops.append(("send", link))
            ops.append(("drop" if i % 2 else "deliver", link))
    run_differential_schedule(ops, reliable=False)


# -- AGDP parity -----------------------------------------------------------------


def _assert_agdp_equal(new, ref, live):
    assert new.nodes == ref.nodes
    assert new.live_nodes == ref.live_nodes
    for x in live:
        for y in live:
            a = new.distance(x, y)
            b = ref.distance(x, y)
            if math.isinf(b):
                assert math.isinf(a)
            else:
                assert a == pytest.approx(b, abs=1e-9)
    # pair_updates excluded: the reference keeps the old full-block counting
    assert new.stats.nodes_added == ref.stats.nodes_added
    assert new.stats.nodes_killed == ref.stats.nodes_killed
    assert new.stats.edges_inserted == ref.stats.edges_inserted
    assert new.stats.max_nodes == ref.stats.max_nodes


@settings(max_examples=60, deadline=None)
@given(agdp_scripts())
def test_numpy_agdp_matches_reference(steps):
    new = NumpyAGDP(source="s")
    ref = ReferenceNumpyAGDP(source="s")
    live = {"s"}
    for node, edges, kills in steps:
        new.step(node, edges, kills)
        ref.step(node, edges, kills)
        live.add(node)
        live -= set(kills)
        _assert_agdp_equal(new, ref, live)


@settings(max_examples=30, deadline=None)
@given(agdp_scripts())
def test_numpy_agdp_matches_reference_gc_off(steps):
    new = NumpyAGDP(source="s", gc_enabled=False)
    ref = ReferenceNumpyAGDP(source="s", gc_enabled=False)
    live = {"s"}
    for node, edges, kills in steps:
        new.step(node, edges, kills)
        ref.step(node, edges, kills)
        live.add(node)
        live -= set(kills)
    _assert_agdp_equal(new, ref, live)
