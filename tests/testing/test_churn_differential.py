"""The conformance sweep over membership churn and self-stabilization.

Generated lossy schedules with ``join``/``leave``/``rejoin`` handshakes,
time-varying edges, and seeded state corruption replay through the full
differential driver: efficient vs full-information on every delivery
checkpoint, plus the independent end-of-run oracles.  A churn schedule
ends with a restoration tail (everyone rejoined, every edge up, every
estimator re-audited), so the oracles cover the whole membership
history, not just the survivors.
"""

from hypothesis import given, settings

from repro.core import EfficientCSA
from repro.testing import check_schedule, run_differential
from repro.testing.strategies import churn_schedules


@given(churn_schedules(min_steps=8, max_steps=30))
def test_differential_churn(schedule):
    report = check_schedule(schedule)
    assert report.ok, report.describe()


@given(churn_schedules(min_steps=8, max_steps=25, corrupt=False))
def test_differential_membership_only(schedule):
    report = check_schedule(schedule)
    assert report.ok, report.describe()


@settings(max_examples=25)
@given(churn_schedules(min_steps=8, max_steps=25))
def test_differential_churn_numpy_backend(schedule):
    """The dense backend survives churn too (slot compaction under kills)."""
    self_heal = any(step[0] == "corrupt" for step in schedule.steps)
    from repro.core.csa_base import SuspicionPolicy

    report = run_differential(
        schedule,
        estimator_factory=lambda p, s: EfficientCSA(
            p,
            s,
            reliable=False,
            agdp_backend="numpy",
            self_heal=self_heal,
            suspicion=SuspicionPolicy() if self_heal else None,
        ),
    )
    assert report.ok, report.describe()


@settings(max_examples=20)
@given(churn_schedules(min_steps=10, max_steps=35))
def test_differential_churn_with_debug_invariants(schedule):
    """The O(n^3) invariant hooks stay quiet across joins and recoveries."""
    report = run_differential(schedule, debug_invariants=True)
    assert report.ok, report.describe()
