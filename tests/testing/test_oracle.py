"""The oracles against the production path - and against themselves.

The from-scratch references in :mod:`repro.testing.oracle` only earn
trust by agreeing with the production implementations they were written
to check (on executions where both are believed correct) and by internal
cross-consistency: Floyd-Warshall versus Bellman-Ford versus the reverse
graph, causal pasts versus the View's transitive closure.
"""

import math

import pytest
from hypothesis import given

from repro.core import (
    DriftSpec,
    SystemSpec,
    TransitSpec,
    View,
    external_bounds,
    source_point,
)
from repro.sim.schedule import ScheduleHarness
from repro.testing.oracle import (
    OracleInconsistencyError,
    oracle_all_pairs,
    oracle_causal_past,
    oracle_distances_from,
    oracle_distances_to,
    oracle_external_bounds,
    oracle_live_points,
    oracle_source_point,
    oracle_sync_edges,
)
from repro.testing.strategies import schedules

from ..conftest import make_event, recv, send, two_proc_spec


def _run(schedule):
    harness = ScheduleHarness(schedule, attach_full=False)
    harness.run()
    return harness


@given(schedules(min_steps=5, max_steps=30))
def test_oracle_agrees_with_production_path(schedule):
    harness = _run(schedule)
    view = harness.view
    spec = harness.spec
    # liveness: Definition 3.1 from raw events vs the View implementation
    assert oracle_live_points(harness.events) == view.live_points()
    assert oracle_source_point(harness.events, spec) == source_point(view, spec)
    for proc in view.processors:
        p = view.last_event(proc).eid
        past = oracle_causal_past(harness.events, p)
        # causal past: raw BFS vs the View's happens-before closure
        assert set(past) == set(view.view_from(p))
        ours = oracle_external_bounds(past, spec, p)
        expected = external_bounds(view.view_from(p), spec, p)
        assert ours.lower == pytest.approx(expected.lower, abs=1e-9)
        if math.isinf(expected.upper):
            assert math.isinf(ours.upper)
        else:
            assert ours.upper == pytest.approx(expected.upper, abs=1e-9)


@given(schedules(min_steps=5, max_steps=25))
def test_oracle_internal_cross_consistency(schedule):
    """Floyd-Warshall, forward Bellman-Ford, and reverse Bellman-Ford agree."""
    harness = _run(schedule)
    spec = harness.spec
    events = harness.events
    all_pairs = oracle_all_pairs(events, spec)
    eids = sorted(events)
    for x in eids[:4]:  # a few rows/columns keep the check O(small)
        from_x = oracle_distances_from(events, spec, x)
        to_x = oracle_distances_to(events, spec, x)
        for y in eids:
            assert from_x[y] == pytest.approx(all_pairs[x][y], abs=1e-9) or (
                math.isinf(from_x[y]) and math.isinf(all_pairs[x][y])
            )
            assert to_x[y] == pytest.approx(all_pairs[y][x], abs=1e-9) or (
                math.isinf(to_x[y]) and math.isinf(all_pairs[y][x])
            )


def test_unbounded_without_source_point():
    spec = two_proc_spec()
    lone = make_event("a", 0, 5.0)
    bound = oracle_external_bounds([lone], spec, lone.eid)
    assert not bound.is_bounded


def test_source_point_is_the_latest_source_event():
    spec = two_proc_spec()
    events = [make_event("src", 0, 1.0), make_event("src", 1, 2.0),
              make_event("a", 0, 9.0)]
    assert oracle_source_point(events, spec).seq == 1


def test_inconsistent_execution_raises():
    """A round trip faster than the advertised minimum transit has no
    satisfying execution: the sync graph closes a negative cycle."""
    spec = SystemSpec.build(
        source="src",
        processors=["src", "a"],
        links=[("src", "a")],
        default_drift=DriftSpec.perfect(),
        default_transit=TransitSpec(5.0, 10.0),  # transit at least 5
    )
    s1 = send("src", 0, 0.0, dest="a")
    r1 = recv("a", 0, 1.0, s1)  # claims arrival after 1 < 5 time units
    s2 = send("a", 1, 1.5, dest="src")
    r2 = recv("src", 1, 2.0, s2)
    events = [s1, r1, s2, r2]
    with pytest.raises(OracleInconsistencyError):
        oracle_all_pairs(events, spec)
    with pytest.raises(OracleInconsistencyError):
        oracle_distances_from(events, spec, s1.eid)


def test_sync_edges_omit_infinite_weights():
    spec = two_proc_spec(transit=(0.0, math.inf))
    s1 = send("src", 0, 1.0, dest="a")
    r1 = recv("a", 0, 2.0, s1)
    edges = oracle_sync_edges([s1, r1], spec)
    assert all(math.isfinite(w) for _u, _v, w in edges)
    directions = {(u, v) for u, v, _w in edges}
    # unbounded transit upper: the recv->send edge (weight upper - observed
    # = inf) is omitted; send->recv (observed - lower) is kept
    assert (r1.eid, s1.eid) not in directions
    assert (s1.eid, r1.eid) in directions
