"""Sanity properties of the Hypothesis strategy library itself.

A strategy that silently generates degenerate inputs (disconnected
topologies, out-of-band rates, schedules that never deliver) would turn
every downstream property test vacuous, so the generators get their own
contract tests.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.faults import FaultPlan
from repro.sim.schedule import Schedule, TAMPER_MODES
from repro.testing.strategies import (
    Topology,
    fault_plans,
    schedules,
    system_specs,
    tamper_specs,
    topologies,
)


def _connected(topo: Topology) -> bool:
    adjacency = {i: set() for i in range(topo.n_procs)}
    for u, v in topo.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for peer in adjacency[node]:
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    return len(seen) == topo.n_procs


@given(topologies())
def test_topologies_are_connected_and_simple(topo):
    assert _connected(topo)
    assert len(set(topo.edges)) == len(topo.edges)
    for u, v in topo.edges:
        assert u != v
        assert 0 <= u < topo.n_procs and 0 <= v < topo.n_procs


@given(system_specs())
def test_system_specs_are_well_formed(spec):
    assert spec.source in spec.drift
    for drift in spec.drift.values():
        assert 0 < drift.alpha <= 1 <= drift.beta


@given(schedules(lossy=True, tamper=True))
def test_schedules_are_valid_and_round_trip(schedule):
    # Schedule.__post_init__ validated ops/indices already; check the rest
    assert schedule.rates[0] == 1.0
    assert schedule.tamper is not None
    assert 1 <= schedule.tamper.liar < schedule.n_procs
    assert set(schedule.tamper.modes) <= set(TAMPER_MODES)
    assert Schedule.from_json(schedule.to_json()) == schedule


@given(schedules())
def test_reliable_schedules_never_drop(schedule):
    assert not schedule.lossy
    assert all(op != "drop" for op, *_ in schedule.steps)


@given(st.data())
def test_tamper_specs_target_a_non_source_liar(data):
    n = data.draw(st.integers(min_value=2, max_value=6))
    spec = data.draw(tamper_specs(n))
    assert 1 <= spec.liar < n
    assert spec.period >= 1 and spec.magnitude > 0


@given(st.data())
def test_fault_plans_construct_valid_plans(data):
    names = ["s", "a", "b"]
    links = [("s", "a"), ("a", "b")]
    plan = data.draw(fault_plans(names, links, byzantine=True))
    assert isinstance(plan, FaultPlan)  # __post_init__ validated injections
    for injection in plan.injections:
        proc = getattr(injection, "proc", None)
        if proc is not None:
            assert proc != "s" or type(injection).__name__ not in (
                "CrashWindow",
                "ByzantineProcessor",
            )
