"""Deterministic replay of the committed schedule corpus.

Every JSON entry under ``tests/corpus/`` - seeds committed with this
subsystem plus any divergence archived by :func:`check_schedule` and
promoted to a regression test - is replayed through the full differential
driver and must come back clean.  An entry written at discovery time
therefore stays red until the underlying bug is fixed, and green forever
after (see docs/TESTING.md for the entry format).
"""

import json
from pathlib import Path

import pytest

from repro.testing import load_corpus_entry, run_differential

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries found under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    schedule = load_corpus_entry(path)
    report = run_differential(schedule, debug_invariants=True)
    assert report.ok, f"{path.name}: {report.describe()}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_is_well_formed(path):
    data = json.loads(path.read_text())
    assert set(data) >= {"format", "label", "note", "schedule", "repro"}
    assert "run_differential" in data["repro"]
