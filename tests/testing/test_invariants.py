"""Debug-mode invariant hooks: gating, wiring, and detection power."""

import math

import pytest
from hypothesis import given

from repro.core import AGDP, EfficientCSA
from repro.core.agdp_numpy import NumpyAGDP
from repro.testing import (
    InvariantViolation,
    broken_gc_factory,
    check_agdp_invariants,
    check_csa_invariants,
    debug_checks_enabled,
    run_differential,
)
from repro.testing.strategies import schedules

from ..conftest import two_proc_spec


class TestGating:
    def test_explicit_override_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert debug_checks_enabled(True) is True
        assert debug_checks_enabled(False) is False
        monkeypatch.setenv("REPRO_DEBUG", "1")
        assert debug_checks_enabled(False) is False

    def test_environment_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert debug_checks_enabled() is False
        monkeypatch.setenv("REPRO_DEBUG", "0")
        assert debug_checks_enabled() is False
        monkeypatch.setenv("REPRO_DEBUG", "1")
        assert debug_checks_enabled() is True

    def test_csa_arms_hooks_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        csa = EfficientCSA("a", two_proc_spec())
        assert csa._debug_checks
        assert csa.agdp.invariant_hook is not None
        monkeypatch.delenv("REPRO_DEBUG")
        csa = EfficientCSA("a", two_proc_spec())
        assert not csa._debug_checks
        assert csa.agdp.invariant_hook is None


class TestAGDPHookWiring:
    @pytest.mark.parametrize("cls", [AGDP, NumpyAGDP])
    def test_hook_fires_on_insert_and_kill(self, cls):
        calls = []
        agdp = cls()
        agdp.invariant_hook = calls.append
        agdp.add_node("a")
        agdp.add_node("b")
        agdp.insert_edge("a", "b", 1.0)
        agdp.kill("b")
        assert len(calls) == 2
        assert all(got is agdp for got in calls)

    @pytest.mark.parametrize("cls", [AGDP, NumpyAGDP])
    def test_uninformative_insertions_skip_the_hook(self, cls):
        calls = []
        agdp = cls()
        agdp.invariant_hook = calls.append
        agdp.add_node("a")
        agdp.add_node("b")
        agdp.insert_edge("a", "b", math.inf)  # TOP carries no information
        agdp.insert_edge("a", "a", 0.5)  # non-negative self-loop no-op
        assert calls == []


class TestDetection:
    def test_clean_agdp_passes(self):
        agdp = AGDP()
        agdp.add_node("a")
        agdp.add_node("b")
        agdp.insert_edge("a", "b", 1.0)
        check_agdp_invariants(agdp)

    def test_corrupted_closure_is_caught(self):
        agdp = AGDP()
        for node in ("a", "b", "c"):
            agdp.add_node(node)
        agdp.insert_edge("a", "b", 1.0)
        agdp.insert_edge("b", "c", 1.0)
        agdp._dist["a"]["c"] = 5.0  # break the triangle inequality
        with pytest.raises(InvariantViolation, match="triangle"):
            check_agdp_invariants(agdp)

    def test_corrupted_self_distance_is_caught(self):
        agdp = AGDP()
        agdp.add_node("a")
        agdp._dist["a"]["a"] = -1.0
        with pytest.raises(InvariantViolation):
            check_agdp_invariants(agdp)

    def test_clean_csa_passes_full_suite(self):
        csa = EfficientCSA("src", two_proc_spec(), debug_checks=True)
        from ..conftest import send

        csa.on_send(send("src", 0, 1.0, dest="a"))  # hooks ran internally
        check_csa_invariants(csa)

    def test_desynchronized_modules_trip_the_node_set_invariant(self):
        """A node present in the live tracker but killed in the AGDP is the
        cross-module desync the CSA-level check exists to catch."""
        from ..conftest import send

        csa = EfficientCSA("src", two_proc_spec(), debug_checks=True)
        csa.on_send(send("src", 0, 1.0, dest="a"))
        csa.on_send(send("src", 1, 2.0, dest="a"))
        victim = next(iter(csa.agdp.nodes - {csa._source_rep}))
        csa.agdp.kill(victim)  # per-module hook passes: the AGDP is fine
        with pytest.raises(InvariantViolation):
            check_csa_invariants(csa)

    def test_forgetful_gc_mutant_is_internally_consistent(self):
        """The GC-broken estimator is *consistently* wrong: its live
        tracker and AGDP agree with each other, so structural invariants
        pass and only the differential oracle (Definition 3.1 recomputed
        from the true event set) exposes it - exactly the division of
        labor between the two detection layers."""
        from ..conftest import send

        csa = broken_gc_factory("src", two_proc_spec(), debug_checks=True)
        csa.on_send(send("src", 0, 1.0, dest="a"))
        csa.on_send(send("src", 1, 2.0, dest="a"))  # hooks ran, no violation
        check_csa_invariants(csa)


@given(schedules(min_steps=5, max_steps=20))
def test_invariants_hold_across_random_schedules(schedule):
    """debug_invariants arms the hooks inside the differential driver."""
    report = run_differential(
        schedule, debug_invariants=True, check_determinism=False
    )
    assert report.ok, report.describe()


@given(schedules(min_steps=5, max_steps=15, lossy=True))
def test_invariants_hold_on_lossy_schedules(schedule):
    report = run_differential(
        schedule, debug_invariants=True, check_determinism=False
    )
    assert report.ok, report.describe()
