"""Behavioural tests for the three baseline estimators.

All baselines run as extra channels on shared executions; the tests check
(1) soundness where promised, (2) the expected quality ordering against
the optimal algorithm, and (3) estimator-specific mechanics.
"""

import math

import pytest

from repro.baselines import CristianCSA, DriftFreeFudgeCSA, NTPFilterCSA
from repro.core import ClockBound, EfficientCSA
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip

CHANNELS = {
    "efficient": lambda p, s: EfficientCSA(p, s),
    "driftfree-fudge": lambda p, s: DriftFreeFudgeCSA(p, s, window=30.0),
    "cristian": lambda p, s: CristianCSA(p, s),
    "ntp": lambda p, s: NTPFilterCSA(p, s),
}


@pytest.fixture(scope="module")
def shared_run():
    names, links = topologies.line(4)
    network = standard_network(names, links, seed=33, drift_ppm=100, delay=(0.005, 0.04))
    return run_workload(
        network,
        PeriodicGossip(period=5.0, seed=33),
        CHANNELS,
        duration=200.0,
        seed=33,
        sample_period=10.0,
    )


class TestSoundness:
    @pytest.mark.parametrize("channel", ["driftfree-fudge", "cristian"])
    def test_sound_baselines_never_violate(self, shared_run, channel):
        bad = [
            s
            for s in shared_run.samples_for(channel)
            if not s.sound
        ]
        assert bad == []

    def test_everyone_eventually_bounded(self, shared_run):
        for channel in CHANNELS:
            late = [
                s
                for s in shared_run.samples_for(channel)
                if s.rt > 100.0 and s.proc != "p0"
            ]
            bounded = [s for s in late if s.bound.is_bounded]
            assert len(bounded) > 0.8 * len(late), channel


class TestQualityOrdering:
    def test_optimal_tightest_everywhere(self, shared_run):
        by_key = {}
        for sample in shared_run.samples:
            by_key.setdefault((sample.rt, sample.proc), {})[sample.channel] = sample
        for grouped in by_key.values():
            efficient = grouped.get("efficient")
            if efficient is None or not efficient.bound.is_bounded:
                continue
            for channel in ("driftfree-fudge", "cristian"):
                other = grouped.get(channel)
                if other is not None and other.bound.is_bounded:
                    assert efficient.width <= other.width + 1e-9

    def test_cristian_degrades_with_hops(self, shared_run):
        def mean(proc):
            widths = [
                s.width
                for s in shared_run.samples_for("cristian", proc=proc)
                if s.bound.is_bounded
            ]
            return sum(widths) / len(widths)

        assert mean("p1") < mean("p2") < mean("p3")


class TestDriftFreeFudge:
    def test_fudge_scales_with_window(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        narrow = DriftFreeFudgeCSA("p1", network.spec, window=10.0)
        wide = DriftFreeFudgeCSA("p1", network.spec, window=100.0)
        assert wide.fudge == pytest.approx(10 * narrow.fudge)

    def test_custom_fudge_scale(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        csa = DriftFreeFudgeCSA("p1", network.spec, window=10.0, fudge_scale=0.5)
        assert csa.fudge == pytest.approx(5.0)

    def test_estimate_cached_per_event(self, shared_run):
        csa = shared_run.sim.estimator("p2", "driftfree-fudge")
        first = csa.estimate()
        second = csa.estimate()
        assert first == second

    def test_unbounded_before_any_event(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        csa = DriftFreeFudgeCSA("p1", network.spec)
        assert not csa.estimate().is_bounded


class TestCristianEstimator:
    def test_unbounded_without_round_trip(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        csa = CristianCSA("p1", network.spec)
        assert not csa.estimate().is_bounded

    def test_sample_counters(self, shared_run):
        csa = shared_run.sim.estimator("p1", "cristian")
        assert csa.samples_taken > 0

    def test_width_grows_between_contacts(self, shared_run):
        csa = shared_run.sim.estimator("p1", "cristian")
        lt = csa.last_local_event.lt
        now = csa.estimate_now(lt)
        later = csa.estimate_now(lt + 100.0)
        assert later.width > now.width


class TestNTPFilter:
    def test_point_estimate_close_to_truth(self, shared_run):
        trace = shared_run.trace
        sim = shared_run.sim
        csa = sim.estimator("p1", "ntp")
        lt_now = sim.local_time("p1")
        point = csa.point_estimate(lt_now)
        assert point is not None
        assert abs(point - sim.now) < 0.05

    def test_no_samples_no_estimate(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        csa = NTPFilterCSA("p1", network.spec)
        assert csa.point_estimate(0.0) is None
        assert not csa.estimate_now(0.0).is_bounded

    def test_source_is_its_own_reference(self):
        names, links = topologies.line(2)
        network = standard_network(names, links, seed=1)
        csa = NTPFilterCSA("p0", network.spec)
        assert csa.point_estimate(5.0) == pytest.approx(5.0)
        bound = csa.estimate_now(5.0)
        assert bound.lower == bound.upper == pytest.approx(5.0)

    def test_dispersion_grows_with_age(self, shared_run):
        csa = shared_run.sim.estimator("p2", "ntp")
        lt = shared_run.sim.local_time("p2")
        now = csa.estimate_now(lt)
        later = csa.estimate_now(lt + 1000.0)
        assert later.width > now.width


class TestWindowedCSA:
    @pytest.fixture(scope="class")
    def windowed_run(self):
        from repro.baselines import WindowedCSA

        names, links = topologies.line(4)
        network = standard_network(
            names, links, seed=44, drift_ppm=100, delay=(0.005, 0.04)
        )
        return run_workload(
            network,
            PeriodicGossip(period=5.0, seed=44),
            {
                "efficient": lambda p, s: EfficientCSA(p, s),
                "windowed": lambda p, s: WindowedCSA(p, s, window=25.0),
                "driftfree-fudge": lambda p, s: DriftFreeFudgeCSA(p, s, window=25.0),
            },
            duration=200.0,
            seed=44,
            sample_period=10.0,
        )

    def test_sound(self, windowed_run):
        assert [
            s for s in windowed_run.samples_for("windowed") if not s.sound
        ] == []

    def test_between_optimal_and_fudge(self, windowed_run):
        """Windowed sits between: never tighter than optimal, and (being
        honest about drift on the same window) at least as tight as the
        fudge recipe on average."""
        by_key = {}
        for s in windowed_run.samples:
            by_key.setdefault((s.rt, s.proc), {})[s.channel] = s
        beat_optimal = 0
        total = 0
        widths = {"windowed": 0.0, "driftfree-fudge": 0.0}
        for grouped in by_key.values():
            if len(grouped) < 3:
                continue
            if not all(g.bound.is_bounded for g in grouped.values()):
                continue
            total += 1
            if grouped["windowed"].width < grouped["efficient"].width - 1e-9:
                beat_optimal += 1
            for ch in widths:
                widths[ch] += grouped[ch].width
        assert total > 20
        assert beat_optimal == 0
        assert widths["windowed"] <= widths["driftfree-fudge"] + 1e-9
