"""Tests for the round-trip bookkeeping shared by NTP/Cristian baselines."""

import pytest

from repro.baselines.common import RoundTripMixin, RoundTripPayload
from repro.core import ClockBound

from ..conftest import recv, send


class Host(RoundTripMixin):
    def __init__(self):
        self._rt_init()


class TestRoundTripMixin:
    def test_first_packet_has_no_echo(self):
        host = Host()
        s = send("a", 0, 10.0, dest="b")
        payload = host._rt_build_payload(s, None)
        assert payload.org is None and payload.rec is None
        assert payload.xmt == 10.0

    def test_round_trip_completes(self):
        a, b = Host(), Host()
        # a -> b
        s1 = send("a", 0, 10.0, dest="b")
        p1 = a._rt_build_payload(s1, None)
        r1 = recv("b", 0, 20.0, s1)
        assert b._rt_ingest(r1, p1) is None  # no echo yet
        # b -> a closes the loop
        s2 = send("b", 1, 21.0, dest="a")
        p2 = b._rt_build_payload(s2, ClockBound(0.0, 1.0))
        r2 = recv("a", 1, 11.5, s2)
        sample = a._rt_ingest(r2, p2)
        assert sample is not None
        assert sample.t1 == 10.0
        assert sample.t2 == 20.0
        assert sample.t3 == 21.0
        assert sample.t4 == 11.5
        assert sample.peer == "b"
        assert sample.peer_bound == ClockBound(0.0, 1.0)

    def test_sample_arithmetic(self):
        a, b = Host(), Host()
        s1 = send("a", 0, 10.0, dest="b")
        p1 = a._rt_build_payload(s1, None)
        b._rt_ingest(recv("b", 0, 20.0, s1), p1)
        s2 = send("b", 1, 21.0, dest="a")
        p2 = b._rt_build_payload(s2, None)
        sample = a._rt_ingest(recv("a", 1, 11.5, s2), p2)
        assert sample.round_trip == pytest.approx((11.5 - 10.0) - (21.0 - 20.0))
        assert sample.total_local_elapsed == pytest.approx(1.5)
        # theta = ((t2-t1)+(t3-t4))/2 = ((10)+(9.5))/2
        assert sample.offset == pytest.approx(9.75)

    def test_stale_echo_ignored(self):
        a, b = Host(), Host()
        s1 = send("a", 0, 10.0, dest="b")
        p1 = a._rt_build_payload(s1, None)
        b._rt_ingest(recv("b", 0, 20.0, s1), p1)
        # a probes again before b replies: the old echo is stale
        s2 = send("a", 1, 12.0, dest="b")
        a._rt_build_payload(s2, None)
        s3 = send("b", 1, 21.0, dest="a")
        p3 = b._rt_build_payload(s3, None)  # echoes t1=10.0
        sample = a._rt_ingest(recv("a", 2, 13.0, s3), p3)
        assert sample is None  # 10.0 != latest xmt 12.0
