"""Chaos/soak integration tests: the acceptance gate for fault injection.

Four pillars:

1. **RNG-stream isolation** - attaching a no-op :class:`FaultPlan` leaves
   an execution bit-identical (same events, same real times, same losses)
   to a run without one.
2. **Soak under randomized chaos** - seeded schedules of crashes,
   partitions, burst loss, and duplication across line/ring/grid complete
   without unhandled exceptions, estimates stay sound throughout, and
   with retransmission every surviving processor's estimate contains the
   true source time at quiesce.
3. **Graceful degradation** - an out-of-spec excursion (delay or drift)
   trips the degraded-mode quarantine: structured diagnostics are
   recorded and the estimator keeps serving queries, while a
   non-degraded control estimator raises
   :class:`InconsistentSpecificationError` on the same execution.
4. **Retransmission mechanics** - timeouts resend with exponential
   backoff up to the retry cap, and delivery confirmations cancel
   pending timers.
"""

import math

import pytest

from repro.core.csa import EfficientCSA, QuarantineDiagnostic
from repro.core.errors import InconsistentSpecificationError, SimulationError
from repro.sim.engine import Simulation
from repro.sim.faults import (
    BurstLoss,
    CrashWindow,
    DelayExcursion,
    DriftExcursion,
    Duplication,
    FaultPlan,
    PartitionWindow,
    RetransmitPolicy,
)
from repro.sim.network import topologies
from repro.sim.runner import run_workload, standard_network
from repro.sim.workloads import PeriodicGossip


def _estimators(**kwargs):
    return {"efficient": lambda p, s: EfficientCSA(p, s, reliable=False, **kwargs)}


def _trace_fingerprint(trace):
    return [
        (record.event.eid, record.event.kind, record.event.lt, record.rt)
        for record in trace
    ]


# -- 1. RNG-stream isolation -----------------------------------------------------


def test_noop_fault_plan_is_bit_identical():
    names, links = topologies.ring(5)

    def execute(faults):
        network = standard_network(names, links, seed=3, loss_prob=0.15)
        return run_workload(
            network,
            PeriodicGossip(period=4.0, seed=3),
            _estimators(),
            duration=60.0,
            seed=3,
            faults=faults,
        )

    baseline = execute(None)
    with_plan = execute(FaultPlan(seed=42))

    assert _trace_fingerprint(baseline.trace) == _trace_fingerprint(with_plan.trace)
    assert baseline.trace.lost_sends == with_plan.trace.lost_sends
    assert baseline.sim.messages_sent == with_plan.sim.messages_sent
    assert baseline.sim.messages_lost == with_plan.sim.messages_lost
    assert [(s.rt, s.proc, s.bound) for s in baseline.samples] == [
        (s.rt, s.proc, s.bound) for s in with_plan.samples
    ]


# -- 2. soak under randomized chaos ----------------------------------------------


@pytest.mark.parametrize(
    "shape_name,shape",
    [
        ("line", topologies.line(5)),
        ("ring", topologies.ring(6)),
        ("grid", topologies.grid(2, 3)),
    ],
)
def test_chaos_soak_sound_and_contained(shape_name, shape):
    names, links = shape
    network = standard_network(names, links, seed=11, loss_prob=0.05)
    plan = FaultPlan.random(11, network, 80.0)
    # the acceptance schedule must actually contain every fault family
    assert plan.of_kind(CrashWindow)
    assert plan.of_kind(PartitionWindow)
    assert plan.of_kind(BurstLoss)
    assert plan.of_kind(Duplication)
    assert not plan.has_out_of_spec()

    result = run_workload(
        network,
        PeriodicGossip(period=4.0, seed=11),
        _estimators(degraded_mode=True),
        duration=80.0,
        seed=11,
        sample_period=8.0,
        faults=plan,
        retransmit=RetransmitPolicy(timeout=1.0, backoff=2.0, max_retries=3),
    )

    # no unhandled exception reaching here is half the point; now soundness:
    assert not result.soundness_violations()
    sim = result.sim
    # faults really fired
    injected = sim.faults.injected
    assert injected["partition_drops"] + injected["burst_drops"] > 0 or (
        sim.messages_lost > 0
    )
    # surviving processors' estimates contain true source time at quiesce
    for proc in network.processors:
        if sim.crashed(proc):
            continue
        bound = sim.estimator(proc, "efficient").estimate_now(sim.local_time(proc))
        assert bound.contains(sim.now, tolerance=1e-6), (shape_name, proc)
    # in-spec chaos never trips the quarantine
    for proc in network.processors:
        assert not sim.estimator(proc, "efficient").diagnostics


def test_chaos_per_link_counters_consistent():
    names, links = topologies.ring(5)
    network = standard_network(names, links, seed=7, loss_prob=0.1)
    plan = FaultPlan.random(7, network, 60.0)
    result = run_workload(
        network,
        PeriodicGossip(period=3.0, seed=7),
        _estimators(degraded_mode=True),
        duration=60.0,
        seed=7,
        faults=plan,
        retransmit=RetransmitPolicy(timeout=1.0, max_retries=2),
    )
    sim = result.sim
    assert sum(c.sent for c in sim.link_stats.values()) == sim.messages_sent
    assert sum(c.lost for c in sim.link_stats.values()) == sim.messages_lost
    assert (
        sum(c.duplicated for c in sim.link_stats.values()) == sim.messages_duplicated
    )
    # the trace-derived summary agrees on sent/lost per directed link
    summary = sim.trace.link_summary()
    for key, counters in sim.link_stats.items():
        if counters.sent == 0:
            continue
        assert summary[key]["sent"] == counters.sent
        assert summary[key]["lost"] == counters.lost
    # drop-time accounting: trace and counters agree *at quiesce*
    assert len(sim.trace.lost_sends) == sim.messages_lost


# -- 3. graceful degradation on out-of-spec faults --------------------------------


def _excursion_network_and_plan(kind):
    names, links = topologies.line(4)
    network = standard_network(names, links, seed=5)
    if kind == "delay":
        a, b = links[1]
        injection = DelayExcursion(a, b, start=15.0, end=35.0, extra=2.0)
    else:
        injection = DriftExcursion(names[-1], start=15.0, end=35.0, rate_offset=0.5)
    return network, FaultPlan(seed=5, injections=(injection,))


@pytest.mark.parametrize("kind", ["delay", "drift"])
def test_out_of_spec_raises_without_degraded_mode(kind):
    network, plan = _excursion_network_and_plan(kind)
    with pytest.raises(InconsistentSpecificationError):
        run_workload(
            network,
            PeriodicGossip(period=4.0, seed=5),
            _estimators(degraded_mode=False),
            duration=60.0,
            seed=5,
            faults=plan,
        )


@pytest.mark.parametrize("kind", ["delay", "drift"])
def test_out_of_spec_quarantined_in_degraded_mode(kind):
    network, plan = _excursion_network_and_plan(kind)
    result = run_workload(
        network,
        PeriodicGossip(period=4.0, seed=5),
        _estimators(degraded_mode=True),
        duration=60.0,
        seed=5,
        faults=plan,
    )
    diagnostics = [
        d
        for proc in network.processors
        for d in result.sim.estimator(proc, "efficient").diagnostics
    ]
    assert diagnostics, "expected the excursion to trip the quarantine"
    for diagnostic in diagnostics:
        assert isinstance(diagnostic, QuarantineDiagnostic)
        assert diagnostic.kind in ("drift", "transit")
        assert "negative cycle" in diagnostic.reason
        x, y, w = diagnostic.edge
        assert math.isfinite(w)
    # the estimator keeps serving queries after quarantining
    for proc in network.processors:
        estimator = result.sim.estimator(proc, "efficient")
        assert estimator.degraded or not estimator.diagnostics
        bound = estimator.estimate_now(result.sim.local_time(proc))
        assert bound.lower <= bound.upper


def test_drift_excursion_violates_advertised_spec():
    """The excursion clock really leaves its advertised band (that's the point)."""
    network, plan = _excursion_network_and_plan("drift")
    active = plan.bind(network)
    proc = network.processors[-1]
    base = network.clocks[proc]
    wrapped = active.clock_for(proc, base)
    assert wrapped is not base
    assert wrapped.advertised == base.advertised  # spec not widened
    # measured rate over the excursion window exceeds the advertised maximum
    rate = (wrapped.lt(30.0) - wrapped.lt(20.0)) / 10.0
    max_rate = base.advertised.alpha  # alpha = fastest advertised rate
    assert rate > max_rate or rate > 1.4  # offset 0.5 dominates ppm-scale drift
    # the inverse still works on the wrapped clock
    assert wrapped.rt(wrapped.lt(27.5)) == pytest.approx(27.5, abs=1e-6)


# -- 4. retransmission mechanics ---------------------------------------------------


def _two_node_sim(**kwargs):
    names, links = topologies.line(2)
    network = standard_network(names, links, seed=1, loss_prob=kwargs.pop("loss", 0.0))
    sim = Simulation(network, seed=1, **kwargs)
    sim.attach_estimators(
        "efficient", lambda p, s: EfficientCSA(p, s, reliable=False)
    )
    return sim


def test_retransmit_resends_lost_messages():
    sim = _two_node_sim(
        loss=0.4, retransmit=RetransmitPolicy(timeout=0.5, backoff=2.0, max_retries=4)
    )
    for _ in range(40):
        sim.send("p0", "p1")
        sim.run_until(sim.now + 2.0)
    sim.run_until(sim.now + 60.0)
    assert sim.messages_lost > 0
    assert sim.retransmissions > 0
    # every loss eventually covered: attempts = originals + retransmissions
    assert sim.messages_sent == 40 + sim.retransmissions


def test_retransmit_respects_retry_cap():
    names, links = topologies.line(2)
    network = standard_network(names, links, seed=2)
    # a permanent partition loses every transmission
    plan = FaultPlan(
        seed=2, injections=(PartitionWindow("p0", "p1", 0.0, math.inf),)
    )
    sim = Simulation(
        network,
        seed=2,
        faults=plan,
        retransmit=RetransmitPolicy(timeout=0.25, backoff=2.0, max_retries=3),
    )
    sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s, reliable=False))
    sim.send("p0", "p1")
    sim.run_until(200.0)
    # 1 original + exactly max_retries resends, then it gives up
    assert sim.messages_sent == 4
    assert sim.retransmissions == 3
    assert sim.messages_lost == 4


def test_retransmit_timeouts_use_exponential_backoff():
    policy = RetransmitPolicy(timeout=0.5, backoff=3.0, max_retries=5)
    assert policy.timeout_for(0) == pytest.approx(0.5)
    assert policy.timeout_for(1) == pytest.approx(1.5)
    assert policy.timeout_for(3) == pytest.approx(13.5)


def test_confirmed_delivery_cancels_timeout():
    sim = _two_node_sim(retransmit=RetransmitPolicy(timeout=5.0, max_retries=3))
    sim.send("p0", "p1")
    sim.run_until(100.0)
    assert sim.messages_lost == 0
    assert sim.retransmissions == 0
    assert sim.false_loss_signals == 0
    assert not sim._await_ack


def test_short_timeout_false_alarm_is_sound():
    # timeout far below the transit lower bound: every send times out first
    sim = _two_node_sim(retransmit=RetransmitPolicy(timeout=1e-3, max_retries=1))
    sim.send("p0", "p1")
    sim.run_until(50.0)
    assert sim.false_loss_signals >= 1
    assert sim.messages_lost == 0  # nothing was actually dropped
    # the estimator survived the spurious loss flag and the duplicate delivery
    bound = sim.estimator("p1", "efficient").estimate_now(sim.local_time("p1"))
    assert bound.contains(sim.now, tolerance=1e-6)


# -- crash / duplication / partition specifics -------------------------------------


def test_crash_window_suppresses_and_resumes():
    names, links = topologies.line(2)
    network = standard_network(names, links, seed=9)
    plan = FaultPlan(seed=9, injections=(CrashWindow("p1", 20.0, 40.0),))
    sim = Simulation(network, seed=9, faults=plan, confirm_deliveries=True)
    sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s, reliable=False))

    sent = []

    def tick():
        event = sim.send("p1", "p0")
        sent.append((sim.now, event))
        back = sim.send("p0", "p1")
        assert back is not None  # p0 never crashes
        if sim.now < 60.0:
            sim.schedule_after(5.0, tick)

    sim.schedule_at(1.0, tick)
    sim.run_until(80.0)

    suppressed = [rt for rt, event in sent if event is None]
    delivered = [rt for rt, event in sent if event is not None]
    assert suppressed and all(20.0 <= rt < 40.0 for rt in suppressed)
    assert any(rt >= 40.0 for rt in delivered)  # resumed after the window
    assert sim.sends_suppressed == len(suppressed)
    # messages that arrived during the crash were dropped at the doorstep
    assert sim.faults.injected["crash_dropped_arrivals"] > 0
    # estimator state survived the outage (durable-state reboot)
    bound = sim.estimator("p1", "efficient").estimate_now(sim.local_time("p1"))
    assert bound.contains(sim.now, tolerance=1e-6)


def test_duplication_counted_and_discarded():
    names, links = topologies.line(2)
    network = standard_network(names, links, seed=13)
    plan = FaultPlan(seed=13, injections=(Duplication("p0", "p1", prob=1.0),))
    sim = Simulation(network, seed=13, faults=plan)
    sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s, reliable=False))
    for _ in range(10):
        sim.send("p0", "p1")
        sim.run_until(sim.now + 1.0)
    sim.run_until(sim.now + 10.0)
    assert sim.messages_duplicated == 10
    assert sim.link_stats[("p0", "p1")].duplicated == 10
    # at-most-once: exactly one receive event per send in the trace
    receives = [r for r in sim.trace if r.event.is_receive]
    assert len(receives) == 10


def test_partition_drops_both_directions():
    names, links = topologies.line(2)
    network = standard_network(names, links, seed=17)
    plan = FaultPlan(
        seed=17, injections=(PartitionWindow("p0", "p1", 0.0, math.inf),)
    )
    sim = Simulation(network, seed=17, faults=plan, loss_detection_delay=1.0)
    sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s, reliable=False))
    sim.send("p0", "p1")
    sim.run_until(sim.now + 1.0)
    sim.send("p1", "p0")
    sim.run_until(sim.now + 10.0)
    assert sim.messages_lost == 2
    assert sim.faults.injected["partition_drops"] == 2
    assert not any(r.event.is_receive for r in sim.trace)


def test_burst_loss_is_correlated():
    names, links = topologies.line(2)
    network = standard_network(names, links, seed=19)
    plan = FaultPlan(
        seed=19,
        injections=(
            BurstLoss("p0", "p1", p_enter=0.2, p_exit=0.2, loss_bad=1.0),
        ),
    )
    sim = Simulation(network, seed=19, faults=plan, loss_detection_delay=math.inf)
    sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s, reliable=False))
    outcomes = []
    for _ in range(400):
        before = sim.messages_lost
        sim.send("p0", "p1")
        outcomes.append(sim.messages_lost > before)
        sim.run_until(sim.now + 0.5)
    losses = sum(outcomes)
    assert 0 < losses < 400
    # correlation: a loss is followed by another loss far more often than
    # the marginal loss rate would predict under independence
    following_loss = [b for a, b in zip(outcomes, outcomes[1:]) if a]
    conditional = sum(following_loss) / len(following_loss)
    marginal = losses / len(outcomes)
    assert conditional > 1.5 * marginal


# -- satellite: random_connected no longer silently under-delivers -----------------


def test_random_connected_raises_on_impossible_chords():
    with pytest.raises(SimulationError):
        topologies.random_connected(4, extra_edges=100, seed=0)
    # feasible request still works and yields the exact count
    names, pairs = topologies.random_connected(6, extra_edges=3, seed=0)
    assert len(pairs) == (6 - 1) + 3
