"""Byzantine-input integration tests: the acceptance gate for PR 2.

A fixed-seed ring carries ``f >= 1`` Byzantine liars that tamper with the
history payloads they ship (timestamp lies, equivocation, fabrication,
truncation) while the event *trace* stays bit-identical to the honest
run - lying happens in message contents only, never in timing.  The
hardened estimators must then:

* keep every honest processor's estimate sound (the honest-only portion
  of the execution is in-spec, so Theorem 2.1 still applies to it);
* evict the liar at every honest *neighbor* - a consistent liar is
  provably indistinguishable at distance, so neighbors sharing
  round-trips with it are where the decisive evidence lives;
* leave no honest processor evicted at quiesce (transient collateral
  evictions must rehabilitate once the gap-healing paths catch up);
* keep the honest-only synchronization graph free of negative cycles.
"""

import pytest

from repro.core import (
    EfficientCSA,
    FAILURE_KINDS,
    SimulationError,
    SuspicionPolicy,
    build_sync_graph,
    find_negative_cycle,
)
from repro.sim.faults import BYZANTINE_MODES, ByzantineProcessor, FaultPlan
from repro.sim.runner import run_workload, standard_network
from repro.sim.workloads import PeriodicGossip

NAMES = ("s", "a", "b", "c", "d", "e")
LIAR = "c"
DURATION = 200.0


def _ring_links(names):
    return [(names[i], names[(i + 1) % len(names)]) for i in range(len(names))]


def _execute(faults, duration=DURATION):
    network = standard_network(list(NAMES), _ring_links(NAMES), seed=5)
    policy = SuspicionPolicy(threshold=3.0, clean_window=40.0)
    return run_workload(
        network,
        PeriodicGossip(period=2.0, seed=3),
        {"hardened": lambda p, s: EfficientCSA(p, s, suspicion=policy)},
        duration=duration,
        seed=5,
        sample_period=10.0,
        faults=faults,
    )


def _liar_plan(modes=("lie_timestamps", "equivocate", "fabricate"), **kwargs):
    kwargs.setdefault("start", 5.0)
    kwargs.setdefault("magnitude", 0.8)
    return FaultPlan(
        seed=5, injections=(ByzantineProcessor(LIAR, modes=modes, **kwargs),)
    )


def _trace_fingerprint(trace):
    return [
        (record.event.eid, record.event.kind, record.event.lt, record.rt)
        for record in trace
    ]


@pytest.fixture(scope="module")
def honest_run():
    return _execute(None)


@pytest.fixture(scope="module")
def byzantine_run():
    return _execute(_liar_plan())


# -- the lie is in the payloads, not the physics -----------------------------------


def test_lying_leaves_the_trace_bit_identical(honest_run, byzantine_run):
    """Tampering rewrites message contents only: timing is untouched."""
    assert _trace_fingerprint(byzantine_run.trace) == _trace_fingerprint(
        honest_run.trace
    )
    assert byzantine_run.trace.lost_sends == honest_run.trace.lost_sends
    assert byzantine_run.sim.messages_sent == honest_run.sim.messages_sent


def test_dormant_byzantine_window_is_a_noop(honest_run):
    """An armed liar whose window never opens changes nothing at all."""
    result = _execute(_liar_plan(start=10 * DURATION, end=20 * DURATION))
    assert _trace_fingerprint(result.trace) == _trace_fingerprint(honest_run.trace)
    assert result.sim.faults.injected["tampered_payloads"] == 0
    assert not result.eviction_events("hardened")
    assert [(s.rt, s.proc, s.bound) for s in result.samples] == [
        (s.rt, s.proc, s.bound) for s in honest_run.samples
    ]


def test_tampering_actually_fired(byzantine_run):
    injected = byzantine_run.sim.faults.injected
    assert injected["tampered_payloads"] > 0
    assert injected["lied_timestamps"] > 0
    assert injected["equivocations"] > 0
    assert injected["fabricated_records"] > 0


# -- detection and containment -----------------------------------------------------


def test_every_honest_neighbor_evicts_the_liar(byzantine_run):
    sim = byzantine_run.sim
    neighbors = sim.spec.neighbors(LIAR)
    assert neighbors  # the ring gives the liar two honest neighbors
    for peer in neighbors:
        tracker = sim.estimator(peer, "hardened").suspicion
        assert tracker.is_evicted(LIAR), f"{peer} did not evict {LIAR}"


def test_no_honest_processor_stays_evicted(byzantine_run):
    for proc, evicted in byzantine_run.evicted_by("hardened").items():
        if proc == LIAR:
            continue  # the liar's own verdicts carry no guarantee
        assert evicted <= {LIAR}, f"{proc} still evicts honest {evicted - {LIAR}}"


def test_honest_estimates_stay_sound(byzantine_run):
    unsound = [
        s for s in byzantine_run.samples if s.proc != LIAR and not s.sound
    ]
    assert unsound == []


def test_honest_only_sync_graph_has_no_negative_cycle(byzantine_run):
    sim = byzantine_run.sim
    view = sim.trace.global_view()
    honest_view = view.without_events(e.eid for e in view.events_of(LIAR))
    assert find_negative_cycle(build_sync_graph(honest_view, sim.spec)) is None


def test_diagnostics_surface_in_run_result(byzantine_run):
    failures = byzantine_run.validation_failures("hardened")
    neighbor_failures = [
        f
        for (proc, _channel), entries in failures.items()
        for f in entries
        if proc in byzantine_run.sim.spec.neighbors(LIAR)
    ]
    assert neighbor_failures, "neighbors should have ledgered anomalies"
    for failure in neighbor_failures:
        assert failure.kind in FAILURE_KINDS
        assert failure.detail
    events = byzantine_run.eviction_events("hardened")
    evictions = [
        e
        for (proc, _channel), entries in events.items()
        if proc != LIAR
        for e in entries
        if e.action == "evicted"
    ]
    assert any(e.proc == LIAR for e in evictions)


def test_truncation_is_detected():
    """A liar that only drops records from relayed payloads still burns."""
    result = _execute(_liar_plan(modes=("truncate",), rate=0.5))
    injected = result.sim.faults.injected
    assert injected["truncated_records"] > 0
    assert injected["lied_timestamps"] == 0
    # truncation shows up as sequence gaps charged to the shipper
    scores = [
        result.sim.estimator(peer, "hardened").suspicion.scores.get(LIAR, 0.0)
        for peer in result.sim.spec.neighbors(LIAR)
    ]
    assert any(score > 0 for score in scores)
    for proc, evicted in result.evicted_by("hardened").items():
        if proc != LIAR:
            assert evicted <= {LIAR}
    assert not [s for s in result.samples if s.proc != LIAR and not s.sound]


def test_two_adjacent_liars_are_contained():
    """f=2: adjacent liars keep the honest remainder of the ring connected."""
    liars = ("c", "d")
    plan = FaultPlan(
        seed=5,
        injections=tuple(
            ByzantineProcessor(
                proc,
                modes=("lie_timestamps", "equivocate", "fabricate"),
                start=5.0,
                magnitude=0.8,
            )
            for proc in liars
        ),
    )
    result = _execute(plan)
    sim = result.sim
    # every honest neighbor of each liar evicts it
    for liar in liars:
        for peer in sim.spec.neighbors(liar):
            if peer in liars:
                continue
            assert sim.estimator(peer, "hardened").suspicion.is_evicted(liar)
    # no honest processor ends up evicted anywhere honest
    for proc, evicted in result.evicted_by("hardened").items():
        if proc not in liars:
            assert evicted <= set(liars)
    # honest estimates remain sound throughout
    assert not [s for s in result.samples if s.proc not in liars and not s.sound]
    # and the honest-only synchronization graph stays consistent
    view = sim.trace.global_view()
    honest_view = view.without_events(
        e.eid for liar in liars for e in view.events_of(liar)
    )
    assert find_negative_cycle(build_sync_graph(honest_view, sim.spec)) is None


# -- configuration validation ------------------------------------------------------


def test_source_cannot_be_byzantine():
    network = standard_network(list(NAMES), _ring_links(NAMES), seed=5)
    plan = FaultPlan(seed=1, injections=(ByzantineProcessor("s"),))
    with pytest.raises(SimulationError):
        plan.bind(network)


def test_duplicate_byzantine_binding_rejected():
    network = standard_network(list(NAMES), _ring_links(NAMES), seed=5)
    plan = FaultPlan(
        seed=1,
        injections=(ByzantineProcessor("c"), ByzantineProcessor("c", start=50.0)),
    )
    with pytest.raises(SimulationError):
        plan.bind(network)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"modes": ("steal_clock",)},
        {"modes": ()},
        {"start": 10.0, "end": 5.0},
        {"magnitude": 0.0},
        {"rate": 1.5},
    ],
)
def test_bad_byzantine_configs_rejected(kwargs):
    with pytest.raises(SimulationError):
        ByzantineProcessor("c", **kwargs)


def test_plan_reports_adversarial_content():
    plan = _liar_plan()
    assert plan.has_adversarial()
    assert plan.byzantine_procs() == (LIAR,)
    assert not FaultPlan(seed=1).has_adversarial()
    assert set(("lie_timestamps", "equivocate", "truncate", "fabricate")) == set(
        BYZANTINE_MODES
    )
