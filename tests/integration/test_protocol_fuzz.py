"""Property-based fuzzing of the full CSA stack under adversarial schedules.

Hypothesis draws explicit :class:`repro.sim.schedule.Schedule`s - step by
step send/deliver choices over a random connected topology, with hidden
affine clocks inside the advertised drift band - and the differential
driver replays each one against the full-information reference and the
from-scratch oracles (:mod:`repro.testing`).  Checked at every delivery:

* the estimate contains the hidden true time of the last local event;
* the estimate equals Theorem 2.1 on the oracle local view;
* the live tracker equals Definition 3.1 on the oracle local view;

plus end-of-run checks (Lemma 3.5 GC preservation, serialization
round-trips, quarantine cleanliness).

Example budgets come from the Hypothesis profiles registered in
``tests/conftest.py`` (dev/ci/nightly via ``HYPOTHESIS_PROFILE``).
"""

import math

import pytest
from hypothesis import given

from repro.core import (
    build_sync_graph,
    check_execution,
    external_bounds,
    extremal_execution,
    source_point,
)
from repro.sim.schedule import ScheduleHarness
from repro.testing import run_differential
from repro.testing.strategies import schedules


@given(schedules(min_steps=5, max_steps=40))
def test_fuzz_optimality_and_liveness(schedule):
    report = run_differential(schedule, check_determinism=False)
    assert report.ok, report.describe()


@given(schedules(min_steps=5, max_steps=30))
def test_fuzz_numpy_backend_agrees(schedule):
    from repro.core import EfficientCSA

    report = run_differential(
        schedule,
        estimator_factory=lambda p, s: EfficientCSA(p, s, agdp_backend="numpy"),
        check_determinism=False,
    )
    assert report.ok, report.describe()


@given(schedules(min_steps=8, max_steps=30))
def test_fuzz_tightness_endpoints(schedule):
    """On random executions, both endpoints of the optimal interval are
    attained by explicitly constructed, spec-satisfying executions."""
    harness = ScheduleHarness(schedule, attach_full=False)
    harness.run()
    view = harness.view
    spec = harness.spec
    sp = source_point(view, spec)
    if sp is None:
        return
    graph = build_sync_graph(view, spec)
    for proc in view.processors:
        p = view.last_event(proc).eid
        bound = external_bounds(view, spec, p, graph)
        for endpoint, target in (("upper", bound.upper), ("lower", bound.lower)):
            if math.isinf(target):
                continue
            rt = extremal_execution(view, spec, p, sp, endpoint, graph=graph)
            assert check_execution(view, spec, rt, tolerance=1e-7) == []
            assert rt[p] == pytest.approx(target, abs=1e-7)
