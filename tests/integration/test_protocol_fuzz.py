"""Property-based fuzzing of the full CSA stack under adversarial schedules.

Hypothesis drives the protocol directly - no simulator: it chooses, step
by step, whether each processor sends (to a random neighbor) or whether
some in-flight message is delivered (FIFO per directed link, but links
interleave arbitrarily and messages may sit in flight for the rest of the
run).  Timestamps come from hidden affine clocks whose rates sit inside
the advertised drift bounds, and links advertise only ``transit >= 0``,
so every generated execution satisfies its specification by construction.

Checked after every delivery, against oracles recomputed from scratch:

* the estimate contains the hidden true time of the last local event;
* the estimate equals Theorem 2.1 on the oracle local view;
* the live tracker equals Definition 3.1 on the oracle local view.
"""

import math
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DriftSpec,
    EfficientCSA,
    Event,
    EventId,
    EventKind,
    SystemSpec,
    TransitSpec,
    View,
    external_bounds,
)



def _assert_bound_equal(bound, expected):
    import math
    import pytest

    for ours, oracle in ((bound.lower, expected.lower), (bound.upper, expected.upper)):
        if math.isinf(oracle):
            assert ours == oracle
        else:
            assert ours == pytest.approx(oracle, abs=1e-7)


class FuzzHarness:
    """N processors with hidden affine clocks, FIFO in-flight queues."""

    def __init__(self, rates, edges):
        names = [f"q{i}" for i in range(len(rates))]
        self.names = names
        self.rates = dict(zip(names, rates))
        self.rates[names[0]] = 1.0  # the source defines real time
        band = (min(self.rates.values()), max(self.rates.values()))
        self.spec = SystemSpec.build(
            source=names[0],
            processors=names,
            links=[(names[u], names[v]) for u, v in edges],
            default_drift=DriftSpec.from_rate_bounds(band[0] - 1e-9, band[1] + 1e-9),
            default_transit=TransitSpec(0.0, math.inf),
        )
        self.csas = {name: EfficientCSA(name, self.spec) for name in names}
        self.now = 0.0
        self.seq = {name: 0 for name in names}
        self.in_flight = {}
        for u, v in edges:
            self.in_flight[(names[u], names[v])] = deque()
            self.in_flight[(names[v], names[u])] = deque()
        self.oracle = View()
        self.truth = {}

    def _lt(self, proc):
        return self.rates[proc] * self.now

    def _next_event(self, proc, kind, **kwargs):
        event = Event(
            eid=EventId(proc, self.seq[proc]),
            lt=self._lt(proc),
            kind=kind,
            **kwargs,
        )
        self.seq[proc] += 1
        self.oracle.add(event)
        self.truth[event.eid] = self.now
        return event

    def advance(self, dt):
        self.now += dt

    def send(self, src, dest):
        event = self._next_event(src, EventKind.SEND, dest=dest)
        payload = self.csas[src].on_send(event)
        self.in_flight[(src, dest)].append((event, payload))

    def deliver(self, src, dest):
        queue = self.in_flight[(src, dest)]
        if not queue:
            return False
        send_event, payload = queue.popleft()
        event = self._next_event(dest, EventKind.RECEIVE, send_eid=send_event.eid)
        self.csas[dest].on_receive(event, payload)
        self._check(dest)
        return True

    def _check(self, proc):
        csa = self.csas[proc]
        last = csa.last_local_event
        bound = csa.estimate()
        # soundness against the hidden truth
        assert bound.contains(self.truth[last.eid], tolerance=1e-7), (
            proc,
            bound,
            self.truth[last.eid],
        )
        # optimality against the from-scratch oracle
        local_view = self.oracle.view_from(last.eid)
        expected = external_bounds(local_view, self.spec, last.eid)
        _assert_bound_equal(bound, expected)
        # liveness against Definition 3.1
        assert csa.live.live_points() == local_view.live_points()


def topology_strategy(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    edges = [(draw(st.integers(min_value=0, max_value=i - 1)), i) for i in range(1, n)]
    # a few chords
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and (min(u, v), max(u, v)) not in [
            (min(a, b), max(a, b)) for a, b in edges
        ]:
            edges.append((min(u, v), max(u, v)))
    rates = [
        draw(st.floats(min_value=0.995, max_value=1.005, allow_nan=False))
        for _ in range(n)
    ]
    return rates, edges


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_fuzz_tightness_endpoints(data):
    """On random executions, both endpoints of the optimal interval are
    attained by explicitly constructed, spec-satisfying executions."""
    from repro.core import (
        build_sync_graph,
        check_execution,
        extremal_execution,
        source_point,
    )

    rates, edges = topology_strategy(data.draw)
    harness = FuzzHarness(rates, edges)
    directed = sorted(harness.in_flight)
    for _ in range(data.draw(st.integers(min_value=8, max_value=30))):
        harness.advance(data.draw(st.floats(min_value=0.01, max_value=2.0)))
        link = directed[data.draw(st.integers(min_value=0, max_value=len(directed) - 1))]
        if data.draw(st.booleans()):
            harness.send(*link)
        elif harness.in_flight[link]:
            harness.deliver(*link)
    view = harness.oracle
    spec = harness.spec
    sp = source_point(view, spec)
    if sp is None:
        return
    graph = build_sync_graph(view, spec)
    for proc in view.processors:
        p = view.last_event(proc).eid
        bound = external_bounds(view, spec, p, graph)
        for endpoint, target in (("upper", bound.upper), ("lower", bound.lower)):
            if math.isinf(target):
                continue
            rt = extremal_execution(view, spec, p, sp, endpoint, graph=graph)
            assert check_execution(view, spec, rt, tolerance=1e-7) == []
            assert rt[p] == pytest.approx(target, abs=1e-7)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_fuzz_optimality_and_liveness(data):
    rates, edges = topology_strategy(data.draw)
    harness = FuzzHarness(rates, edges)
    directed = sorted(harness.in_flight)
    n_ops = data.draw(st.integers(min_value=5, max_value=40))
    for _ in range(n_ops):
        harness.advance(data.draw(st.floats(min_value=0.01, max_value=2.0)))
        link = directed[data.draw(st.integers(min_value=0, max_value=len(directed) - 1))]
        if data.draw(st.booleans()):
            harness.send(*link)
        else:
            harness.deliver(*link)
    # drain a random subset of what is still in flight
    for link in directed:
        while harness.in_flight[link] and data.draw(st.booleans()):
            harness.advance(data.draw(st.floats(min_value=0.01, max_value=1.0)))
            harness.deliver(*link)
