"""Soak test at a larger scale: a 4x5 grid, thousands of events.

Uses the numpy AGDP backend (the scale is what it exists for) and checks
the full invariant set where affordable: spec satisfaction and soundness
everywhere, optimality spot-checked against the from-scratch oracle at a
few processors, and the complexity envelopes across the whole fleet.
"""

import pytest

from repro.analysis import collect_complexity
from repro.core import EfficientCSA, check_execution, external_bounds
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip


@pytest.fixture(scope="module")
def grid_run():
    names, links = topologies.grid(4, 5)
    network = standard_network(names, links, seed=77, drift_ppm=200)
    return run_workload(
        network,
        PeriodicGossip(period=6.0, seed=77),
        {
            "efficient": lambda p, s: EfficientCSA(
                p, s, agdp_backend="numpy"
            )
        },
        duration=120.0,
        seed=77,
        sample_period=15.0,
    )


def test_scale_of_the_run(grid_run):
    assert len(grid_run.sim.network.processors) == 20
    assert len(grid_run.trace) > 2000


def test_execution_satisfies_spec(grid_run):
    view = grid_run.trace.global_view()
    errors = check_execution(
        view, grid_run.sim.spec, grid_run.trace.real_times, tolerance=1e-6
    )
    assert errors == []


def test_all_samples_sound(grid_run):
    assert grid_run.soundness_violations() == []


def test_optimality_spot_checks(grid_run):
    """From-scratch Theorem 2.1 on the oracle local view, at the corners
    and the centre of the grid."""
    trace = grid_run.trace
    spec = grid_run.sim.spec
    global_view = trace.global_view()
    for proc in ("p0_0", "p3_4", "p2_2"):
        estimator = grid_run.sim.estimator(proc, "efficient")
        last = estimator.last_local_event
        local_view = global_view.view_from(last.eid)
        oracle = external_bounds(local_view, spec, last.eid)
        ours = estimator.estimate()
        assert ours.lower == pytest.approx(oracle.lower, abs=1e-6)
        assert ours.upper == pytest.approx(oracle.upper, abs=1e-6)


def test_complexity_envelopes(grid_run):
    report = collect_complexity(grid_run)
    verdicts = report.bounds_hold()
    assert all(verdicts.values()), (verdicts, report)
    # state is orders of magnitude below the execution size
    assert report.max_agdp_nodes < len(grid_run.trace) / 10
    assert report.max_history_buffer < len(grid_run.trace) / 4


def test_estimates_reasonably_tight(grid_run):
    """Multi-hop grid corners still land within ~one link uncertainty
    per hop of the source."""
    for sample in grid_run.samples:
        if sample.rt < 60.0 or not sample.bound.is_bounded:
            continue
        assert sample.width < 1.0
