"""End-to-end invariants over randomized simulations.

These tests re-derive every paper property from the omniscient trace on
randomly generated systems (topology, drift, delays, traffic all vary with
the seed), tying all subsystems together:

1. the simulated execution satisfies its own specification;
2. the efficient CSA's interval at every processor equals the theorem's
   optimal bounds computed from scratch on the oracle local view;
3. every sampled interval contains true time;
4. extremal executions attain the endpoints;
5. the protocol state stays within the paper's complexity envelopes.
"""

import math

import pytest

from repro.analysis import collect_complexity
from repro.core import (
    EfficientCSA,
    FullInformationCSA,
    check_execution,
    external_bounds,
)
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip, RandomTraffic

SEEDS = [0, 1, 2, 3, 4]


def random_system(seed):
    """A varied small system derived deterministically from the seed."""
    n = 4 + (seed % 4)
    extra = seed % 3
    names, links = topologies.random_connected(n, extra, seed)
    drift_ppm = [50, 100, 300, 1000][seed % 4]
    delay = [(0.005, 0.05), (0.01, 0.2), (0.05, 0.6)][seed % 3]
    network = standard_network(
        names, links, seed=seed, drift_ppm=drift_ppm, delay=delay
    )
    if seed % 2:
        workload = PeriodicGossip(period=4.0 + seed, seed=seed, internal_per_period=1.0)
    else:
        workload = RandomTraffic(rate=2.0 + seed / 5, seed=seed, internal_prob=0.1)
    return network, workload


@pytest.fixture(scope="module", params=SEEDS)
def random_run(request):
    seed = request.param
    network, workload = random_system(seed)
    return run_workload(
        network,
        workload,
        {
            "efficient": lambda p, s: EfficientCSA(p, s),
            "full": lambda p, s: FullInformationCSA(p, s),
        },
        duration=50.0,
        seed=seed,
        sample_period=5.0,
    )


class TestExecutionValidity:
    def test_spec_satisfied(self, random_run):
        view = random_run.trace.global_view()
        errors = check_execution(
            view, random_run.sim.spec, random_run.trace.real_times, tolerance=1e-6
        )
        assert errors == []

    def test_all_samples_sound(self, random_run):
        assert random_run.soundness_violations() == []


class TestOptimalityEverywhere:
    def test_efficient_equals_oracle_at_every_final_point(self, random_run):
        """The efficient CSA's final answer equals Theorem 2.1 computed
        from scratch on the oracle's local view."""
        trace = random_run.trace
        spec = random_run.sim.spec
        global_view = trace.global_view()
        for proc in random_run.sim.network.processors:
            estimator = random_run.sim.estimator(proc, "efficient")
            last = estimator.last_local_event
            if last is None:
                continue
            local_view = global_view.view_from(last.eid)
            oracle = external_bounds(local_view, spec, last.eid)
            ours = estimator.estimate()
            if not oracle.is_bounded:
                assert ours.lower == oracle.lower and ours.upper == oracle.upper
                continue
            assert ours.lower == pytest.approx(oracle.lower, abs=1e-7)
            assert ours.upper == pytest.approx(oracle.upper, abs=1e-7)

    def test_efficient_equals_full_information(self, random_run):
        for proc in random_run.sim.network.processors:
            e = random_run.sim.estimator(proc, "efficient").estimate()
            f = random_run.sim.estimator(proc, "full").estimate()
            if not (e.is_bounded and f.is_bounded):
                assert e.lower == f.lower and e.upper == f.upper
                continue
            assert e.lower == pytest.approx(f.lower, abs=1e-7)
            assert e.upper == pytest.approx(f.upper, abs=1e-7)


class TestComplexityEnvelope:
    def test_paper_bounds(self, random_run):
        report = collect_complexity(random_run)
        verdicts = report.bounds_hold()
        assert all(verdicts.values()), (verdicts, report)

    def test_agdp_much_smaller_than_execution(self, random_run):
        report = collect_complexity(random_run)
        assert report.max_agdp_nodes < report.events_total / 2


class TestHistoryInvariants:
    def test_knowledge_matches_local_view(self, random_run):
        trace = random_run.trace
        global_view = trace.global_view()
        for proc in random_run.sim.network.processors:
            estimator = random_run.sim.estimator(proc, "efficient")
            last = estimator.last_local_event
            if last is None:
                continue
            expected = global_view.view_from(last.eid)
            for other in random_run.sim.network.processors:
                assert estimator.history.known_seq(other) == expected.last_seq(other)

    def test_live_tracker_matches_oracle(self, random_run):
        trace = random_run.trace
        global_view = trace.global_view()
        for proc in random_run.sim.network.processors:
            estimator = random_run.sim.estimator(proc, "efficient")
            last = estimator.last_local_event
            if last is None:
                continue
            local_view = global_view.view_from(last.eid)
            assert estimator.live.live_points() == local_view.live_points()
            assert estimator.agdp.live_nodes == local_view.live_points()
