"""Lock-step comparison: after *every single event* of an execution the
efficient algorithm and the full-information reference agree exactly.

This is the strongest form of the Sec 3 equivalence - not just at the end
or at sampling instants, but at every point of every processor - run by
single-stepping the simulation engine.
"""

import math

import pytest

from repro.core import EfficientCSA, FullInformationCSA
from repro.sim import Simulation, standard_network, topologies
from repro.sim.workloads import PeriodicGossip, RandomTraffic


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_lockstep_equality(seed):
    names, links = topologies.ring(4)
    network = standard_network(names, links, seed=seed, drift_ppm=400)
    sim = Simulation(network, seed=seed)
    sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s))
    sim.attach_estimators("full", lambda p, s: FullInformationCSA(p, s))
    RandomTraffic(rate=3.0, seed=seed).install(sim)
    steps = 0
    while steps < 400 and sim.pending_actions():
        sim.run_until(1e9, max_actions=1)
        steps += 1
        for proc in network.processors:
            e = sim.estimator(proc, "efficient").estimate()
            f = sim.estimator(proc, "full").estimate()
            if not (e.is_bounded and f.is_bounded):
                assert e.lower == f.lower and e.upper == f.upper
                continue
            assert e.lower == pytest.approx(f.lower, abs=1e-7), (steps, proc)
            assert e.upper == pytest.approx(f.upper, abs=1e-7), (steps, proc)
    assert steps > 100  # the comparison actually exercised a long run


def test_lockstep_soundness_under_loss():
    """Single-stepped lossy run: estimates stay sound at every event."""
    names, links = topologies.ring(4)
    network = standard_network(names, links, seed=9, loss_prob=0.25)
    sim = Simulation(network, seed=9, loss_detection_delay=2.0, confirm_deliveries=True)
    sim.attach_estimators("efficient", lambda p, s: EfficientCSA(p, s, reliable=False))
    PeriodicGossip(period=3.0, seed=9).install(sim)
    steps = 0
    while steps < 500 and sim.pending_actions():
        sim.run_until(1e9, max_actions=1)
        steps += 1
        for proc in network.processors:
            estimator = sim.estimator(proc, "efficient")
            bound = estimator.estimate_now(sim.local_time(proc))
            assert bound.contains(sim.now, tolerance=1e-6), (steps, proc)
    assert sim.messages_lost > 0
