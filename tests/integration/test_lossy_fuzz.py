"""Property-based fuzzing of the lossy path (Sec 3.3).

Hypothesis drives sends, deliveries, *drops*, and loss detections in
arbitrary order over the unreliable-mode protocol.  After every delivery
we assert, against from-scratch oracles:

* soundness (the estimate contains the hidden truth);
* exact optimality versus Theorem 2.1 on the oracle local view - killing
  flagged points must not lose any live-live information (Lemma 3.4
  applied to the Sec 3.3 flags);
* the liveness identity: the tracker's live set equals Definition 3.1 on
  the local view minus the flagged-lost sends this processor knows about.
"""

import math
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DriftSpec,
    EfficientCSA,
    Event,
    EventId,
    EventKind,
    SystemSpec,
    TransitSpec,
    View,
    external_bounds,
)

from .test_protocol_fuzz import topology_strategy



def _assert_bound_equal(bound, expected):
    import math
    import pytest

    for ours, oracle in ((bound.lower, expected.lower), (bound.upper, expected.upper)):
        if math.isinf(oracle):
            assert ours == oracle
        else:
            assert ours == pytest.approx(oracle, abs=1e-7)


class LossyFuzzHarness:
    """Like the reliable harness, but messages can be dropped and flagged."""

    def __init__(self, rates, edges):
        names = [f"q{i}" for i in range(len(rates))]
        self.names = names
        self.rates = dict(zip(names, rates))
        self.rates[names[0]] = 1.0
        band = (min(self.rates.values()), max(self.rates.values()))
        self.spec = SystemSpec.build(
            source=names[0],
            processors=names,
            links=[(names[u], names[v]) for u, v in edges],
            default_drift=DriftSpec.from_rate_bounds(band[0] - 1e-9, band[1] + 1e-9),
            default_transit=TransitSpec(0.0, math.inf),
        )
        self.csas = {
            name: EfficientCSA(name, self.spec, reliable=False) for name in names
        }
        self.now = 0.0
        self.seq = {name: 0 for name in names}
        self.in_flight = {}
        for u, v in edges:
            self.in_flight[(names[u], names[v])] = deque()
            self.in_flight[(names[v], names[u])] = deque()
        self.oracle = View()
        self.truth = {}
        self.flagged = set()

    def _next_event(self, proc, kind, **kwargs):
        event = Event(
            eid=EventId(proc, self.seq[proc]),
            lt=self.rates[proc] * self.now,
            kind=kind,
            **kwargs,
        )
        self.seq[proc] += 1
        self.oracle.add(event)
        self.truth[event.eid] = self.now
        return event

    def advance(self, dt):
        self.now += dt

    def send(self, src, dest):
        event = self._next_event(src, EventKind.SEND, dest=dest)
        payload = self.csas[src].on_send(event)
        self.in_flight[(src, dest)].append((event, payload))

    def deliver(self, src, dest):
        queue = self.in_flight[(src, dest)]
        if not queue:
            return
        send_event, payload = queue.popleft()
        event = self._next_event(dest, EventKind.RECEIVE, send_eid=send_event.eid)
        self.csas[dest].on_receive(event, payload)
        self.csas[src].on_delivery_confirmed(send_event.eid)
        self._check(dest)

    def drop(self, src, dest):
        """Drop the oldest in-flight message and (truthfully) detect it."""
        queue = self.in_flight[(src, dest)]
        if not queue:
            return
        send_event, _payload = queue.popleft()
        self.flagged.add(send_event.eid)
        self.csas[src].on_loss_detected(send_event.eid)
        self._check(src)

    def _check(self, proc):
        csa = self.csas[proc]
        last = csa.last_local_event
        if last is None:
            return
        bound = csa.estimate()
        assert bound.contains(self.truth[last.eid], tolerance=1e-7)
        local_view = self.oracle.view_from(last.eid)
        expected = external_bounds(local_view, self.spec, last.eid)
        _assert_bound_equal(bound, expected)
        # Definition 3.1 minus the flags this processor has learned
        known_flags = csa.history.loss_flags
        oracle_live = local_view.live_points() - {
            f for f in known_flags
            if f in local_view
            and local_view.receive_of(f) is None
            and local_view.last_seq(f.proc) != f.seq
        }
        assert csa.live.live_points() == oracle_live


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_lossy_fuzz(data):
    rates, edges = topology_strategy(data.draw)
    harness = LossyFuzzHarness(rates, edges)
    directed = sorted(harness.in_flight)
    n_ops = data.draw(st.integers(min_value=8, max_value=50))
    for _ in range(n_ops):
        harness.advance(data.draw(st.floats(min_value=0.01, max_value=2.0)))
        link = directed[data.draw(st.integers(min_value=0, max_value=len(directed) - 1))]
        action = data.draw(st.integers(min_value=0, max_value=3))
        if action <= 1:
            harness.send(*link)
        elif action == 2:
            harness.deliver(*link)
        else:
            harness.drop(*link)
    # drain the rest however hypothesis pleases
    for link in directed:
        while harness.in_flight[link]:
            harness.advance(data.draw(st.floats(min_value=0.01, max_value=1.0)))
            if data.draw(st.booleans()):
                harness.deliver(*link)
            else:
                harness.drop(*link)
