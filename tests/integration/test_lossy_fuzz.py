"""Property-based fuzzing of the lossy path (Sec 3.3).

Hypothesis draws schedules with sends, deliveries, *drops*, and loss
detections in arbitrary order over the unreliable-mode protocol; the
differential driver (:mod:`repro.testing.differential`) replays each one
and asserts, against from-scratch oracles:

* soundness (the estimate contains the hidden truth);
* exact optimality versus Theorem 2.1 on the oracle local view - killing
  flagged points must not lose any live-live information (Lemma 3.4
  applied to the Sec 3.3 flags);
* the liveness identity: the tracker's live set equals Definition 3.1 on
  the local view minus the flagged-lost sends this processor knows about;
* Lemma 3.5 at end of run: GC preserved every live-live distance exactly.

Example budgets come from the Hypothesis profiles registered in
``tests/conftest.py`` (dev/ci/nightly via ``HYPOTHESIS_PROFILE``).
"""

from hypothesis import given

from repro.testing import run_differential
from repro.testing.strategies import schedules


@given(schedules(min_steps=8, max_steps=50, lossy=True))
def test_lossy_fuzz(schedule):
    report = run_differential(schedule, check_determinism=False)
    assert report.ok, report.describe()


@given(schedules(min_steps=8, max_steps=40, lossy=True))
def test_lossy_fuzz_gc_ablation_agrees(schedule):
    """GC on/off must produce identical estimates (Lemma 3.4/3.5 end to end)."""
    from repro.core import EfficientCSA

    report = run_differential(
        schedule,
        estimator_factory=lambda p, s: EfficientCSA(
            p, s, reliable=False, agdp_gc=False, history_gc=False
        ),
        check_determinism=False,
        check_gc_distances=False,
    )
    assert report.ok, report.describe()
