#!/usr/bin/env python3
"""The general model: optimal bounds from arbitrary timing constraints.

The paper's framework is broader than messages-plus-drift: *any* upper
bound on the real-time difference of two points is a legal specification,
and Theorem 2.1 still yields the optimal intervals.  This example plays a
forensic timeline-reconstruction scenario:

* a reference clockhouse log (defines real time),
* a camera whose internal clock is unsynchronized but whose drift band
  is known,
* a door sensor with no clock at all - only event ordering constraints
  relative to the camera frames,

and asks: what can we *certify* about when the door opened?

Run:  python examples/calibration.py
"""

from repro.core import GeneralSynchronizer


def main():
    sync = GeneralSynchronizer(source="clockhouse")

    # Reference log entries (real time by definition).
    ref_morning = sync.add_point("clockhouse", lt=9 * 3600.0)
    ref_noon = sync.add_point("clockhouse", lt=12 * 3600.0)

    # Camera frames, on the camera's own (drifting) clock.
    cam_sync_flash = sync.add_point("camera", lt=1000.0)
    cam_door_frame = sync.add_point("camera", lt=8200.0)
    cam_second_flash = sync.add_point("camera", lt=11800.0)
    # The camera clock drifts at most 200 ppm over the declared frames.
    sync.assert_drift("camera", alpha=1 - 2e-4, beta=1 + 2e-4)

    # Calibration facts: the flashes are the clockhouse's time signals,
    # seen by the camera within 0 to 50 ms of emission.
    sync.assert_range(cam_sync_flash, ref_morning, 0.0, 0.050)
    sync.assert_range(cam_second_flash, ref_noon, 0.0, 0.050)

    # The door sensor has no clock: we only know the door event fell
    # between two specific camera frames, 0.2 to 0.6 s after the first.
    door = sync.add_point("door-sensor", lt=0.0)
    sync.assert_range(door, cam_door_frame, 0.2, 0.6)

    assert sync.consistent()

    def clock(seconds):
        h = int(seconds // 3600)
        m = int(seconds % 3600 // 60)
        s = seconds % 60
        return f"{h:02d}:{m:02d}:{s:06.3f}"

    print("certified real-time intervals (Theorem 2.1, optimal):\n")
    for label, point in [
        ("camera saw morning flash", cam_sync_flash),
        ("camera door frame", cam_door_frame),
        ("door opened", door),
    ]:
        bound = sync.external_bounds(point)
        print(
            f"  {label:26s} [{clock(bound.lower)}, {clock(bound.upper)}]"
            f"   (width {bound.width:.3f} s)"
        )

    relative = sync.relative_bounds(door, cam_second_flash)
    print(
        f"\n  door opened {-relative.upper:.3f} to {-relative.lower:.3f} s"
        " before the noon flash"
    )
    print(
        "\nNote the second flash tightened everything retroactively: the"
        "\ncamera's elapsed local time between flashes, bounded by its"
        "\ndrift band, pins the door frame far better than one flash could."
    )


if __name__ == "__main__":
    main()
