#!/usr/bin/env python3
"""Archive a run to JSON and re-analyse it offline.

The simulator's omniscient trace (plus the system specification) is the
complete record of an execution; once archived, every question this
library answers can be re-asked without re-simulating:

* re-validate that the execution satisfied its specification,
* recompute optimal bounds at *any* historical point (not only the ones
  sampled live),
* re-run claim checkers, diff runs, etc.

Run:  python examples/offline_analysis.py
"""

import os
import tempfile

from repro.analysis import render_table
from repro.core import EfficientCSA, check_execution, external_bounds, EventId
from repro.sim import dump_run, load_run, run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip


def main():
    # --- live phase: simulate and archive -------------------------------
    names, links = topologies.ring(5)
    network = standard_network(names, links, seed=31, drift_ppm=150)
    result = run_workload(
        network,
        PeriodicGossip(period=5.0, seed=31),
        {"efficient": lambda proc, spec: EfficientCSA(proc, spec)},
        duration=90.0,
        sample_period=15.0,
    )
    archive = os.path.join(tempfile.gettempdir(), "repro_run.json")
    dump_run(result, archive)
    print(f"archived {len(result.trace)} events to {archive} "
          f"({os.path.getsize(archive) // 1024} KiB)\n")

    # --- offline phase: no simulator state, just the JSON ----------------
    spec, trace, samples = load_run(archive)
    view = trace.global_view()

    errors = check_execution(view, spec, trace.real_times, tolerance=1e-6)
    print(f"spec re-validation: {len(errors)} violations")

    # recompute optimal bounds at points that were never sampled live:
    # the *middle* event of each processor's history
    rows = []
    for proc in view.processors:
        mid_seq = view.last_seq(proc) // 2
        point = EventId(proc, mid_seq)
        bound = external_bounds(view, spec, point)
        truth = trace.rt_of(point)
        rows.append(
            {
                "point": str(point),
                "certified RT interval": str(bound),
                "true RT": round(truth, 4),
                "contains truth": bound.contains(truth, tolerance=1e-6),
            }
        )
    print()
    print(render_table(rows, title="Optimal bounds recomputed at historical points"))
    os.unlink(archive)


if __name__ == "__main__":
    main()
