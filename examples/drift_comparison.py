#!/usr/bin/env python3
"""Optimal vs practical algorithms on the *same* execution (Sec 1, E8).

Because all estimators in this library are passive (Sec 2.2), they can
ride one execution side by side.  This example attaches four of them -

* the paper's optimal algorithm (Sec 3),
* the drift-free optimal + fudge recipe the paper improves on,
* a Cristian-style round-trip interval estimator,
* an NTP-style offset/delay filter -

to periodic gossip on a 5-processor line, and prints the interval width
each achieves at each hop distance from the source.

Run:  python examples/drift_comparison.py
"""

from repro.analysis import dominance_check, render_table, width_stats
from repro.baselines import CristianCSA, DriftFreeFudgeCSA, NTPFilterCSA
from repro.core import EfficientCSA
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip

CHANNELS = ("efficient", "driftfree-fudge", "cristian", "ntp")


def main():
    names, links = topologies.line(5)
    network = standard_network(
        names, links, seed=99, drift_ppm=100, delay=(0.005, 0.05)
    )
    result = run_workload(
        network,
        PeriodicGossip(period=5.0, seed=99),
        {
            "efficient": lambda p, s: EfficientCSA(p, s),
            "driftfree-fudge": lambda p, s: DriftFreeFudgeCSA(p, s, window=40.0),
            "cristian": lambda p, s: CristianCSA(p, s),
            "ntp": lambda p, s: NTPFilterCSA(p, s),
        },
        duration=400.0,
        sample_period=10.0,
    )

    rows = []
    for hops, proc in enumerate(names[1:], start=1):
        row = {"proc": proc, "hops": hops}
        for channel in CHANNELS:
            stats = width_stats(result.samples_for(channel, proc=proc))
            row[f"{channel} (ms)"] = 1000 * stats.mean
        rows.append(row)
    print(render_table(rows, title="Mean certified/quoted interval width by hop"))

    wins = dominance_check(result.samples, "efficient", CHANNELS[1:])
    print()
    print("times a baseline produced a strictly tighter interval than optimal:")
    for channel, count in wins.items():
        print(f"  {channel:16s} {count}")
    unsound = {
        channel: sum(
            1 for s in result.samples_for(channel) if not s.sound
        )
        for channel in CHANNELS
    }
    print("\nsoundness violations (NTP's budget is statistical, misses allowed):")
    for channel, count in unsound.items():
        print(f"  {channel:16s} {count}")


if __name__ == "__main__":
    main()
