#!/usr/bin/env python3
"""Cristian-style probabilistic synchronization (Sec 4).

Clients keep a certified interval for standard time; clock drift widens
it between contacts; when it crosses a threshold the client fires a burst
of round-trip probes until the bound is tight again.  This example plots
(in ASCII) one client's interval width over time - the sawtooth is the
probabilistic mechanism at work - and reports burst statistics.

Run:  python examples/cristian_probes.py
"""

from repro.analysis import render_table, sparkline
from repro.core import EfficientCSA
from repro.sim import run_workload
from repro.sim.workloads import make_cristian_system

THRESHOLD = 0.05


def main():
    network, workload = make_cristian_system(
        6,
        width_threshold=THRESHOLD,
        check_period=5.0,
        drift_ppm=300,
        seed=11,
        monitor_channel="efficient",
    )
    result = run_workload(
        network,
        workload,
        {"efficient": lambda proc, spec: EfficientCSA(proc, spec)},
        duration=600.0,
        sample_period=3.0,
    )

    series = [
        s.width
        for s in result.samples_for("efficient", proc="client0")
        if s.bound.is_bounded
    ]
    print(f"client0 interval width over time (threshold {THRESHOLD * 1000:.0f} ms):")
    print(sparkline(series))
    print(f"min {1000 * min(series):.1f} ms   max {1000 * max(series):.1f} ms")

    rows = [
        {
            "client": client,
            "bursts": count,
            "probes_sent": sum(
                1
                for r in result.trace
                if r.event.is_send and r.event.proc == client
            ),
        }
        for client, count in sorted(workload.bursts.items())
        if client.startswith("client")
    ]
    print()
    print(render_table(rows, title="Probe bursts per client"))
    print()
    k2 = result.trace.link_asymmetry()
    print(f"K2 measured: {k2} (paper: 2 for probe/reply traffic)")
    assert not result.soundness_violations()
    print("all sampled intervals contained true time")


if __name__ == "__main__":
    main()
