#!/usr/bin/env python3
"""A live cluster: EfficientCSA on real wall clocks, in your process.

Everything in the other examples runs inside the simulator, where time
is a variable.  This one stands up three asyncio node daemons on an
in-process loopback transport and lets them gossip for ~3 *real*
seconds: every local time stamp comes from ``time.monotonic()`` through
each node's hardware-clock model (n1 runs 200 ppm fast, n2 drifts
inside a +/-150 ppm band), every message crosses an actual transport,
every ack cancels an actual timer.

Watch the certified intervals narrow as evidence accumulates - and note
the run ends with the same oracle-checkable trace a simulation would
produce.

Run:  python examples/live_cluster.py
"""

from repro.rt import (
    ClusterConfig,
    ModelClockSource,
    SkewedClockSource,
    run_cluster_sync,
)
from repro.sim.clock import PiecewiseDriftingClock


def main():
    config = ClusterConfig(
        processors=("n0", "n1", "n2"),
        links=(("n0", "n1"), ("n1", "n2")),
        duration=3.0,
        gossip_period=0.2,
        sample_period=0.5,
        clocks={
            # n0 (the source) keeps the perfect monotonic clock
            "n1": SkewedClockSource(1.0 + 200e-6),
            "n2": ModelClockSource(
                PiecewiseDriftingClock(
                    seed=7, r_min=1 - 150e-6, r_max=1 + 150e-6, mean_segment=1.0
                )
            ),
        },
        seed=7,
    )
    result = run_cluster_sync(config)

    print("per-node interval width over ~3 s of wall time:")
    for proc in config.processors:
        widths = [
            f"{s.bound.width * 1e3:8.3f}" if s.bound.is_bounded else "     inf"
            for s in result.samples
            if s.proc == proc
        ]
        print(f"  {proc}: {'  '.join(widths)}  (ms)")

    print(
        f"\n{result.messages_sent} messages, {result.messages_lost} lost, "
        f"{len(result.trace)} events traced"
    )
    unsound = result.soundness_violations()
    print(f"soundness violations: {len(unsound)}")
    for proc, stats in sorted(result.nodes.items()):
        print(f"  {proc}: final bound {stats.bound}")
    assert not unsound, "a certified interval excluded the truth"


if __name__ == "__main__":
    main()
