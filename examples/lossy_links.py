#!/usr/bin/env python3
"""Message loss and the Sec 3.3 detection mechanism.

Runs the same lossy gossip execution twice: once with loss detection (a
flag is raised a few seconds after a drop, propagates with the reports,
and each processor garbage-collects the dead point) and once without.
Without detection, every lost message's send point stays live forever -
the state blow-up the paper warns about.

Run:  python examples/lossy_links.py
"""

import math

from repro.analysis import render_table
from repro.core import EfficientCSA
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip


def run_once(detection):
    names, links = topologies.ring(5)
    network = standard_network(names, links, seed=3, loss_prob=0.25)
    return run_workload(
        network,
        PeriodicGossip(period=4.0, seed=3),
        {"efficient": lambda p, s: EfficientCSA(p, s, reliable=False)},
        duration=300.0,
        sample_period=20.0,
        loss_detection_delay=3.0 if detection else math.inf,
    )


def main():
    rows = []
    for detection in (True, False):
        result = run_once(detection)
        peak_live = max(
            result.sim.estimator(p, "efficient").live.max_live
            for p in result.sim.network.processors
        )
        peak_agdp = max(
            result.sim.estimator(p, "efficient").agdp.stats.max_nodes
            for p in result.sim.network.processors
        )
        rows.append(
            {
                "loss detection": detection,
                "messages sent": result.sim.messages_sent,
                "messages lost": result.sim.messages_lost,
                "peak live points": peak_live,
                "peak AGDP nodes": peak_agdp,
                "soundness violations": len(result.soundness_violations()),
            }
        )
    print(render_table(rows, title="Sec 3.3: the cost of undetected loss"))
    print(
        "\nNote: estimates stay sound either way - an undetected lost send"
        "\nis wasteful (it is tracked forever), not wrong."
    )


if __name__ == "__main__":
    main()
