#!/usr/bin/env python3
"""Quickstart: optimal external clock synchronization in ~30 lines.

Builds a 4-processor line (p0 holds standard time), drives periodic
gossip across it, attaches the paper's efficient optimal CSA, and prints
each processor's certified interval for the source clock - together with
the true value, which the algorithm of course never sees.

Run:  python examples/quickstart.py
"""

from repro.core import EfficientCSA
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip


def main():
    names, links = topologies.line(4)
    network = standard_network(
        names,
        links,
        seed=2026,
        drift_ppm=100,        # workstation-grade quartz clocks
        delay=(0.005, 0.080),  # transit bounds per link, in seconds
    )
    result = run_workload(
        network,
        PeriodicGossip(period=5.0, seed=2026),
        {"efficient": lambda proc, spec: EfficientCSA(proc, spec)},
        duration=120.0,
        sample_period=30.0,
    )

    print("processor  hops  certified source-time interval      truth     width")
    for proc in names:
        estimator = result.sim.estimator(proc, "efficient")
        bound = estimator.estimate_now(result.sim.local_time(proc))
        truth = result.sim.now
        hops = names.index(proc)
        print(
            f"{proc:<9}  {hops:<4}  [{bound.lower:12.6f}, {bound.upper:12.6f}]"
            f"  {truth:9.3f}  {bound.width:8.6f}"
        )
        assert bound.contains(truth, tolerance=1e-6), "optimality would be hollow"

    violations = result.soundness_violations()
    print(f"\nsampled {len(result.samples)} intervals during the run; "
          f"{len(violations)} ever excluded true time")


if __name__ == "__main__":
    main()
