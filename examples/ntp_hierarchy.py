#!/usr/bin/env python3
"""The paper's NTP scenario (Sec 4): a levelled time-server hierarchy.

Builds a 3-level system (2 stratum-0 servers on high-accuracy links to
standard time, 4 stratum-1, 8 stratum-2), runs RPC polling, and reports:

* per-level certified interval widths (accuracy degrades down the tree),
* the Sec 4 complexity parameters: K1 vs 16|V|, K2 <= 2, live points vs
  |E|, AGDP matrix vs |E|^2.

Run:  python examples/ntp_hierarchy.py
"""

from collections import defaultdict

from repro.analysis import collect_complexity, render_table
from repro.core import EfficientCSA
from repro.sim import run_workload
from repro.sim.workloads import make_ntp_system


def main():
    network, workload = make_ntp_system(
        (2, 4, 8),
        parents_per_server=2,
        poll_period=20.0,
        drift_ppm=100,
        seed=7,
    )
    result = run_workload(
        network,
        workload,
        {"efficient": lambda proc, spec: EfficientCSA(proc, spec)},
        duration=400.0,
        sample_period=20.0,
    )

    by_level = defaultdict(list)
    for sample in result.samples_for("efficient"):
        if sample.proc == "source" or not sample.bound.is_bounded:
            continue
        level = int(sample.proc.split("_")[0][1:])
        by_level[level].append(sample.width)

    rows = []
    for level in sorted(by_level):
        widths = by_level[level]
        rows.append(
            {
                "stratum": level,
                "servers": len({p for p in network.processors if p.startswith(f"s{level}_")}),
                "samples": len(widths),
                "mean_width_ms": 1000 * sum(widths) / len(widths),
                "max_width_ms": 1000 * max(widths),
            }
        )
    print(render_table(rows, title="Certified interval width by stratum"))

    report = collect_complexity(result)
    print()
    print(render_table(
        [
            {"quantity": "|V|", "measured": report.n_processors, "paper bound": "-"},
            {"quantity": "|E|", "measured": report.n_links, "paper bound": "-"},
            {"quantity": "K1 (relative speed)", "measured": report.k1_relative_speed,
             "paper bound": f"16|V| = {16 * report.n_processors}"},
            {"quantity": "K2 (link asymmetry)", "measured": report.k2_link_asymmetry,
             "paper bound": "2 (RPC)"},
            {"quantity": "peak live points", "measured": report.max_live_points_csa,
             "paper bound": f"O(K2|E|) = O({report.k2_link_asymmetry * report.n_links})"},
            {"quantity": "peak AGDP cells", "measured": report.max_agdp_cells,
             "paper bound": f"O(|E|^2) = O({report.n_links ** 2})"},
        ],
        title="Sec 4 complexity analysis (NTP pattern)",
    ))
    assert report.k2_link_asymmetry <= 2
    assert not result.soundness_violations()
    print("\nall sampled intervals contained true time")


if __name__ == "__main__":
    main()
