#!/usr/bin/env python3
"""A monitoring node bounds every peer's clock from its own view.

The Clock Synchronization Theorem applies to *any* pair of points, so the
same AGDP state that answers "what is standard time?" also answers, at
one observer:

* "what does real time read at each peer's last known point?"
  (``EfficientCSA.estimate_of``), and
* "how far apart are two peers' clocks?"
  (``EfficientCSA.relative_estimate`` - internal-synchronization-style
  output that works even before any source contact).

This example runs gossip over a small random mesh and prints the fleet
table as seen by one monitor processor.

Run:  python examples/fleet_monitor.py
"""

from repro.analysis import render_table
from repro.core import EfficientCSA
from repro.sim import run_workload, standard_network, topologies
from repro.sim.workloads import PeriodicGossip

MONITOR = "p2"


def main():
    names, links = topologies.random_connected(7, 4, seed=5)
    network = standard_network(names, links, seed=5, drift_ppm=200)
    result = run_workload(
        network,
        PeriodicGossip(period=4.0, seed=5),
        {"efficient": lambda proc, spec: EfficientCSA(proc, spec)},
        duration=200.0,
    )
    monitor = result.sim.estimator(MONITOR, "efficient")

    rows = []
    for proc in names:
        absolute = monitor.estimate_of(proc)
        relative = monitor.relative_estimate(proc, MONITOR)
        truth_abs = result.trace.rt_of(monitor.live.last_event(proc)[0])
        rows.append(
            {
                "peer": proc + (" (monitor)" if proc == MONITOR else ""),
                "RT at last known point": str(absolute),
                "truth": round(truth_abs, 4),
                "offset vs monitor": str(relative),
            }
        )
        assert absolute.contains(truth_abs, tolerance=1e-6)
    print(render_table(rows, title=f"The fleet as certified by {MONITOR}"))
    print(
        "\nEvery interval above is optimal for the monitor's information:"
        "\nno tighter claim is justified by what it has seen (Theorem 2.1)."
    )


if __name__ == "__main__":
    main()
