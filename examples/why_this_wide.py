#!/usr/bin/env python3
"""Debugging synchronization quality: which constraint is the bottleneck?

Each endpoint of an optimal interval is a shortest path of concrete
constraints — specific messages' transit bounds, specific clocks' drift
over specific gaps.  The witness explainer reconstructs that chain, so
"my interval is 80 ms wide, why?" has an actionable answer: the dominant
step names the link (or the silent period) to fix.

The scenario: a 3-hop line where the middle link is much sloppier than
the others.  The explainer fingers it immediately.

Run:  python examples/why_this_wide.py
"""

from repro.core import EfficientCSA, TransitSpec, explain_external_bounds
from repro.sim import LinkConfig, Network, PiecewiseDriftingClock, run_workload
from repro.sim.workloads import PeriodicGossip


def main():
    clocks = {
        name: PiecewiseDriftingClock(seed=i, offset=2.0 * i)
        for i, name in enumerate(["relay1", "relay2", "client"], start=1)
    }
    network = Network(
        source="source",
        clocks=clocks,
        links=[
            LinkConfig("source", "relay1", transit=TransitSpec(0.005, 0.015)),
            LinkConfig("relay1", "relay2", transit=TransitSpec(0.005, 0.500)),  # sloppy!
            LinkConfig("relay2", "client", transit=TransitSpec(0.005, 0.015)),
        ],
    )
    result = run_workload(
        network,
        PeriodicGossip(period=5.0, seed=3),
        {"efficient": lambda proc, spec: EfficientCSA(proc, spec)},
        duration=60.0,
    )

    view = result.trace.global_view()
    spec = result.sim.spec
    point = view.last_event("client").eid
    estimator = result.sim.estimator("client", "efficient")
    print(f"client's certified interval: {estimator.estimate()}\n")

    witnesses = explain_external_bounds(view, spec, point)
    for endpoint in ("upper", "lower"):
        witness = witnesses[endpoint]
        print(witness.describe_condensed())
        dominant = witness.dominant_step()
        print(
            f"  => heaviest constraint: {dominant.tail} -> {dominant.head} "
            f"({dominant.kind}, {dominant.weight:+.4f})\n"
        )
    print(
        "Both witnesses run through the relay1-relay2 hop: its 0.5 s transit"
        "\nupper bound dominates everything else.  Fix that link (or send"
        "\ntraffic both ways across it) and the client tightens immediately."
    )


if __name__ == "__main__":
    main()
